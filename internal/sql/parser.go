package sql

import (
	"fmt"
	"strconv"
	"strings"

	"mrdb/internal/core"
)

// --- AST ---

// Statement is any parsed SQL statement.
type Statement interface{ stmt() }

// Expr is a scalar expression.
type Expr interface{ expr() }

// Lit is a literal value.
type Lit struct{ Val Datum }

// ColRef references a column by name.
type ColRef struct{ Name string }

// FuncCall invokes a built-in function (gateway_region,
// gen_random_uuid, rehome_row, now, with_min_timestamp, with_max_staleness).
type FuncCall struct {
	Name string
	Args []Expr
}

// BinaryExpr is a binary operation; only '=', '+' and '-' are supported.
type BinaryExpr struct {
	Op   string
	L, R Expr
}

// CaseExpr is CASE WHEN cond THEN val ... [ELSE val] END.
type CaseExpr struct {
	Whens []CaseWhen
	Else  Expr
}

// CaseWhen is one WHEN arm.
type CaseWhen struct {
	Cond Expr
	Then Expr
}

// Placeholder is a prepared-statement parameter ($1, $2, ...); Idx is
// 1-based. It evaluates to the argument bound by ExecPrepared.
type Placeholder struct{ Idx int }

func (*Lit) expr()         {}
func (*ColRef) expr()      {}
func (*FuncCall) expr()    {}
func (*BinaryExpr) expr()  {}
func (*CaseExpr) expr()    {}
func (*Placeholder) expr() {}

// CreateDatabase is CREATE DATABASE name [PRIMARY REGION r [REGIONS ...]].
type CreateDatabase struct {
	Name          string
	PrimaryRegion string
	Regions       []string
}

// AlterDatabase covers ADD/DROP REGION, SURVIVE ... FAILURE, PLACEMENT and
// SET PRIMARY REGION.
type AlterDatabase struct {
	Name       string
	AddRegion  string
	DropRegion string
	Survive    *core.SurvivalGoal
	Placement  *core.DataPlacement
	SetPrimary string
}

// LocalityClause is a table's LOCALITY specification.
type LocalityClause struct {
	Kind   core.TableLocality
	Region string // REGIONAL BY TABLE IN <region>
}

// ColumnDef is one column in CREATE TABLE.
type ColumnDef struct {
	Name           string
	Type           string
	NotNull        bool
	PrimaryKey     bool
	Unique         bool
	NotVisible     bool
	Default        Expr
	Computed       Expr // AS (expr) STORED
	OnUpdateRehome bool // ON UPDATE rehome_row()
}

// CreateTable is CREATE TABLE with column defs, table-level PRIMARY
// KEY/UNIQUE constraints, an optional LOCALITY clause, and the duplicate-
// indexes baseline extension.
type CreateTable struct {
	Name             string
	Columns          []ColumnDef
	PrimaryKey       []string
	Uniques          [][]string
	Locality         *LocalityClause
	DuplicateIndexes bool // WITH DUPLICATE INDEXES (legacy baseline)
}

// CreateIndex is CREATE [UNIQUE] INDEX name ON table (cols).
type CreateIndex struct {
	Name   string
	Table  string
	Unique bool
	Cols   []string
}

// AlterTableLocality is ALTER TABLE t SET LOCALITY ...
type AlterTableLocality struct {
	Table    string
	Locality LocalityClause
}

// Insert is INSERT INTO t (cols) VALUES (...), (...). With Upsert set it
// is an UPSERT: a blind overwrite that skips uniqueness checks and the
// existence read (allowed when every index key is derived from the PK).
type Insert struct {
	Table   string
	Columns []string
	Rows    [][]Expr
	Upsert  bool
}

// CondOp is a WHERE predicate operator.
type CondOp int8

// Predicate operators.
const (
	OpEq CondOp = iota
	OpIn
)

// Cond is one conjunct: col = v or col IN (v, ...).
type Cond struct {
	Col  string
	Op   CondOp
	Vals []Expr
}

// Where is a conjunction of conditions.
type Where struct {
	Conds []Cond
}

// AsOf is an AS OF SYSTEM TIME clause (§5.3): an exact timestamp (negative
// interval string or absolute), with_min_timestamp(...), or
// with_max_staleness('30s').
type AsOf struct {
	Exact        Expr
	MinTimestamp Expr
	MaxStaleness Expr
}

// Select is SELECT cols FROM t [AS OF SYSTEM TIME ...] [WHERE ...] [LIMIT n].
type Select struct {
	Columns []string // nil means *
	Table   string
	Where   *Where
	Limit   int
	AsOf    *AsOf
}

// Assignment is one SET col = expr in UPDATE.
type Assignment struct {
	Col string
	Val Expr
}

// Update is UPDATE t SET ... WHERE ...
type Update struct {
	Table string
	Set   []Assignment
	Where *Where
}

// Delete is DELETE FROM t WHERE ...
type Delete struct {
	Table string
	Where *Where
}

// SetVar is SET name = value (session settings).
type SetVar struct {
	Name  string
	Value string
}

// ShowRegions is SHOW REGIONS [FROM DATABASE db].
type ShowRegions struct {
	Database string
}

// ShowRanges is SHOW RANGES FROM TABLE t: the range descriptors backing a
// table, with their placement.
type ShowRanges struct {
	Table string
}

// Explain is EXPLAIN <select>: the plan the optimizer would run — index,
// partitions, and whether locality optimized search applies.
type Explain struct {
	Stmt *Select
}

// ExplainAnalyze is EXPLAIN ANALYZE <dml>: execute the statement under a
// trace root and render the plan annotated with trace-derived actuals —
// RPCs, retries, WAN links crossed, wait times, Raft quorum trips, and
// commit phases with virtual-time durations.
type ExplainAnalyze struct {
	Stmt Statement // *Insert, *Select, *Update or *Delete
}

// DropTable is DROP TABLE t.
type DropTable struct {
	Table string
}

// Truncate is TRUNCATE TABLE t: delete all rows, keep the schema.
type Truncate struct {
	Table string
}

func (*CreateDatabase) stmt()     {}
func (*AlterDatabase) stmt()      {}
func (*CreateTable) stmt()        {}
func (*CreateIndex) stmt()        {}
func (*AlterTableLocality) stmt() {}
func (*Insert) stmt()             {}
func (*Select) stmt()             {}
func (*Update) stmt()             {}
func (*Delete) stmt()             {}
func (*SetVar) stmt()             {}
func (*ShowRegions) stmt()        {}
func (*ShowRanges) stmt()         {}
func (*Explain) stmt()            {}
func (*ExplainAnalyze) stmt()     {}
func (*DropTable) stmt()          {}
func (*Truncate) stmt()           {}

// --- Lexer ---

type tokKind int8

const (
	tkEOF tokKind = iota
	tkIdent
	tkString // '...'
	tkNumber
	tkPunct
	tkPlaceholder // $1, $2, ...
)

type token struct {
	kind tokKind
	text string
}

type lexer struct {
	src  string
	pos  int
	toks []token
}

func lex(src string) ([]token, error) {
	l := &lexer{src: src}
	for {
		l.skipSpace()
		if l.pos >= len(l.src) {
			l.toks = append(l.toks, token{kind: tkEOF})
			return l.toks, nil
		}
		c := l.src[l.pos]
		switch {
		case c == '\'':
			s, err := l.lexString()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tkString, text: s})
		case c == '"':
			s, err := l.lexQuotedIdent()
			if err != nil {
				return nil, err
			}
			l.toks = append(l.toks, token{kind: tkIdent, text: s})
		case isDigit(c) || (c == '-' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]) && !l.afterOperand()):
			l.toks = append(l.toks, token{kind: tkNumber, text: l.lexNumber()})
		case isIdentStart(c):
			l.toks = append(l.toks, token{kind: tkIdent, text: l.lexIdent()})
		case c == '$' && l.pos+1 < len(l.src) && isDigit(l.src[l.pos+1]):
			l.pos++
			l.toks = append(l.toks, token{kind: tkPlaceholder, text: l.lexNumber()})
		case strings.ContainsRune("(),=*;+-.", rune(c)):
			l.toks = append(l.toks, token{kind: tkPunct, text: string(c)})
			l.pos++
		default:
			return nil, fmt.Errorf("sql: unexpected character %q at %d", c, l.pos)
		}
	}
}

// afterOperand reports whether the previous token could end an operand, in
// which case '-' is subtraction rather than a negative-number sign.
func (l *lexer) afterOperand() bool {
	if len(l.toks) == 0 {
		return false
	}
	t := l.toks[len(l.toks)-1]
	switch t.kind {
	case tkIdent, tkNumber, tkString:
		return true
	case tkPunct:
		return t.text == ")"
	}
	return false
}

func (l *lexer) skipSpace() {
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == ' ' || c == '\t' || c == '\n' || c == '\r' {
			l.pos++
			continue
		}
		if c == '-' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '-' {
			for l.pos < len(l.src) && l.src[l.pos] != '\n' {
				l.pos++
			}
			continue
		}
		break
	}
}

func (l *lexer) lexString() (string, error) {
	l.pos++ // opening quote
	var out []byte
	for l.pos < len(l.src) {
		c := l.src[l.pos]
		if c == '\'' {
			if l.pos+1 < len(l.src) && l.src[l.pos+1] == '\'' {
				out = append(out, '\'')
				l.pos += 2
				continue
			}
			l.pos++
			return string(out), nil
		}
		out = append(out, c)
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated string")
}

func (l *lexer) lexQuotedIdent() (string, error) {
	l.pos++
	start := l.pos
	for l.pos < len(l.src) {
		if l.src[l.pos] == '"' {
			s := l.src[start:l.pos]
			l.pos++
			return s, nil
		}
		l.pos++
	}
	return "", fmt.Errorf("sql: unterminated quoted identifier")
}

func (l *lexer) lexNumber() string {
	start := l.pos
	if l.src[l.pos] == '-' {
		l.pos++
	}
	for l.pos < len(l.src) && (isDigit(l.src[l.pos]) || l.src[l.pos] == '.') {
		l.pos++
	}
	return l.src[start:l.pos]
}

func (l *lexer) lexIdent() string {
	start := l.pos
	for l.pos < len(l.src) && (isIdentStart(l.src[l.pos]) || isDigit(l.src[l.pos])) {
		l.pos++
	}
	return l.src[start:l.pos]
}

func isDigit(c byte) bool      { return c >= '0' && c <= '9' }
func isIdentStart(c byte) bool { return c == '_' || (c|32 >= 'a' && c|32 <= 'z') }

// --- Parser ---

type parser struct {
	toks []token
	pos  int
}

// Parse parses a single SQL statement.
func Parse(src string) (Statement, error) {
	toks, err := lex(src)
	if err != nil {
		return nil, err
	}
	p := &parser{toks: toks}
	stmt, err := p.parseStatement()
	if err != nil {
		return nil, fmt.Errorf("%w (in %q)", err, src)
	}
	p.maybePunct(";")
	if !p.atEOF() {
		return nil, fmt.Errorf("sql: trailing tokens after statement (in %q)", src)
	}
	return stmt, nil
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) atEOF() bool { return p.cur().kind == tkEOF }
func (p *parser) advance()    { p.pos++ }
func (p *parser) peekKw(kw string) bool {
	t := p.cur()
	return t.kind == tkIdent && strings.EqualFold(t.text, kw)
}

func (p *parser) maybeKw(kw string) bool {
	if p.peekKw(kw) {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectKw(kw string) error {
	if !p.maybeKw(kw) {
		return fmt.Errorf("sql: expected %s, found %q", kw, p.cur().text)
	}
	return nil
}

func (p *parser) maybePunct(s string) bool {
	t := p.cur()
	if t.kind == tkPunct && t.text == s {
		p.advance()
		return true
	}
	return false
}

func (p *parser) expectPunct(s string) error {
	if !p.maybePunct(s) {
		return fmt.Errorf("sql: expected %q, found %q", s, p.cur().text)
	}
	return nil
}

func (p *parser) ident() (string, error) {
	t := p.cur()
	if t.kind != tkIdent {
		return "", fmt.Errorf("sql: expected identifier, found %q", t.text)
	}
	p.advance()
	return strings.ToLower(t.text), nil
}

// tableName parses a possibly schema-qualified table name: "t" or
// "schema.t" (used by the mrdb_internal virtual tables).
func (p *parser) tableName() (string, error) {
	name, err := p.ident()
	if err != nil {
		return "", err
	}
	if p.maybePunct(".") {
		rest, err := p.ident()
		if err != nil {
			return "", err
		}
		name = name + "." + rest
	}
	return name, nil
}

// identOrString accepts a region name as identifier or string literal.
func (p *parser) identOrString() (string, error) {
	t := p.cur()
	if t.kind == tkIdent || t.kind == tkString {
		p.advance()
		return t.text, nil
	}
	return "", fmt.Errorf("sql: expected name, found %q", t.text)
}

func (p *parser) parseStatement() (Statement, error) {
	switch {
	case p.maybeKw("CREATE"):
		switch {
		case p.maybeKw("DATABASE"):
			return p.parseCreateDatabase()
		case p.maybeKw("TABLE"):
			return p.parseCreateTable()
		case p.maybeKw("UNIQUE"):
			if err := p.expectKw("INDEX"); err != nil {
				return nil, err
			}
			return p.parseCreateIndex(true)
		case p.maybeKw("INDEX"):
			return p.parseCreateIndex(false)
		}
		return nil, fmt.Errorf("sql: unsupported CREATE %q", p.cur().text)
	case p.maybeKw("ALTER"):
		switch {
		case p.maybeKw("DATABASE"):
			return p.parseAlterDatabase()
		case p.maybeKw("TABLE"):
			return p.parseAlterTable()
		}
		return nil, fmt.Errorf("sql: unsupported ALTER %q", p.cur().text)
	case p.maybeKw("INSERT"):
		return p.parseInsert(false)
	case p.maybeKw("UPSERT"):
		return p.parseInsert(true)
	case p.maybeKw("SELECT"):
		return p.parseSelect()
	case p.maybeKw("UPDATE"):
		return p.parseUpdate()
	case p.maybeKw("DELETE"):
		return p.parseDelete()
	case p.maybeKw("SET"):
		return p.parseSetVar()
	case p.maybeKw("SHOW"):
		switch {
		case p.maybeKw("REGIONS"):
			s := &ShowRegions{}
			if p.maybeKw("FROM") {
				if err := p.expectKw("DATABASE"); err != nil {
					return nil, err
				}
				name, err := p.ident()
				if err != nil {
					return nil, err
				}
				s.Database = name
			}
			return s, nil
		case p.maybeKw("RANGES"):
			if err := p.expectKw("FROM"); err != nil {
				return nil, err
			}
			if err := p.expectKw("TABLE"); err != nil {
				return nil, err
			}
			name, err := p.ident()
			if err != nil {
				return nil, err
			}
			return &ShowRanges{Table: name}, nil
		}
		return nil, fmt.Errorf("sql: unsupported SHOW %q", p.cur().text)
	case p.maybeKw("DROP"):
		if err := p.expectKw("TABLE"); err != nil {
			return nil, err
		}
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &DropTable{Table: name}, nil
	case p.maybeKw("TRUNCATE"):
		p.maybeKw("TABLE")
		name, err := p.ident()
		if err != nil {
			return nil, err
		}
		return &Truncate{Table: name}, nil
	case p.maybeKw("EXPLAIN"):
		if p.maybeKw("ANALYZE") {
			inner, err := p.parseStatement()
			if err != nil {
				return nil, err
			}
			switch inner.(type) {
			case *Insert, *Select, *Update, *Delete:
				return &ExplainAnalyze{Stmt: inner}, nil
			}
			return nil, fmt.Errorf("sql: EXPLAIN ANALYZE supports only DML statements, got %T", inner)
		}
		if err := p.expectKw("SELECT"); err != nil {
			return nil, err
		}
		sel, err := p.parseSelect()
		if err != nil {
			return nil, err
		}
		return &Explain{Stmt: sel.(*Select)}, nil
	}
	return nil, fmt.Errorf("sql: unsupported statement starting with %q", p.cur().text)
}

func (p *parser) parseCreateDatabase() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &CreateDatabase{Name: name}
	if p.maybeKw("PRIMARY") {
		if err := p.expectKw("REGION"); err != nil {
			return nil, err
		}
		if s.PrimaryRegion, err = p.identOrString(); err != nil {
			return nil, err
		}
		if p.maybeKw("REGIONS") {
			for {
				r, err := p.identOrString()
				if err != nil {
					return nil, err
				}
				s.Regions = append(s.Regions, r)
				if !p.maybePunct(",") {
					break
				}
			}
		}
	}
	return s, nil
}

func (p *parser) parseAlterDatabase() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &AlterDatabase{Name: name}
	switch {
	case p.maybeKw("ADD"):
		if err := p.expectKw("REGION"); err != nil {
			return nil, err
		}
		if s.AddRegion, err = p.identOrString(); err != nil {
			return nil, err
		}
	case p.maybeKw("DROP"):
		if err := p.expectKw("REGION"); err != nil {
			return nil, err
		}
		if s.DropRegion, err = p.identOrString(); err != nil {
			return nil, err
		}
	case p.maybeKw("SURVIVE"):
		var goal core.SurvivalGoal
		switch {
		case p.maybeKw("REGION"):
			goal = core.SurviveRegion
		case p.maybeKw("ZONE"):
			goal = core.SurviveZone
		default:
			return nil, fmt.Errorf("sql: expected ZONE or REGION after SURVIVE")
		}
		if err := p.expectKw("FAILURE"); err != nil {
			return nil, err
		}
		s.Survive = &goal
	case p.maybeKw("PLACEMENT"):
		var pl core.DataPlacement
		switch {
		case p.maybeKw("RESTRICTED"):
			pl = core.PlacementRestricted
		case p.maybeKw("DEFAULT"):
			pl = core.PlacementDefault
		default:
			return nil, fmt.Errorf("sql: expected RESTRICTED or DEFAULT after PLACEMENT")
		}
		s.Placement = &pl
	case p.maybeKw("SET"):
		if err := p.expectKw("PRIMARY"); err != nil {
			return nil, err
		}
		if err := p.expectKw("REGION"); err != nil {
			return nil, err
		}
		if s.SetPrimary, err = p.identOrString(); err != nil {
			return nil, err
		}
	default:
		return nil, fmt.Errorf("sql: unsupported ALTER DATABASE action %q", p.cur().text)
	}
	return s, nil
}

func (p *parser) parseLocality() (*LocalityClause, error) {
	switch {
	case p.maybeKw("GLOBAL"):
		return &LocalityClause{Kind: core.Global}, nil
	case p.maybeKw("REGIONAL"):
		if err := p.expectKw("BY"); err != nil {
			return nil, err
		}
		switch {
		case p.maybeKw("ROW"):
			return &LocalityClause{Kind: core.RegionalByRow}, nil
		case p.maybeKw("TABLE"):
			lc := &LocalityClause{Kind: core.RegionalByTable}
			if p.maybeKw("IN") {
				if p.maybeKw("PRIMARY") {
					if err := p.expectKw("REGION"); err != nil {
						return nil, err
					}
				} else {
					r, err := p.identOrString()
					if err != nil {
						return nil, err
					}
					lc.Region = r
				}
			}
			return lc, nil
		}
		return nil, fmt.Errorf("sql: expected ROW or TABLE after REGIONAL BY")
	}
	return nil, fmt.Errorf("sql: expected locality, found %q", p.cur().text)
}

func (p *parser) parseCreateTable() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	s := &CreateTable{Name: name}
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.maybeKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			cols, err := p.parseColNameList()
			if err != nil {
				return nil, err
			}
			s.PrimaryKey = cols
		case p.maybeKw("UNIQUE"):
			cols, err := p.parseColNameList()
			if err != nil {
				return nil, err
			}
			s.Uniques = append(s.Uniques, cols)
		default:
			col, err := p.parseColumnDef()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, *col)
		}
		if p.maybePunct(",") {
			continue
		}
		break
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	for {
		switch {
		case p.maybeKw("LOCALITY"):
			lc, err := p.parseLocality()
			if err != nil {
				return nil, err
			}
			s.Locality = lc
		case p.maybeKw("WITH"):
			if err := p.expectKw("DUPLICATE"); err != nil {
				return nil, err
			}
			if err := p.expectKw("INDEXES"); err != nil {
				return nil, err
			}
			s.DuplicateIndexes = true
		default:
			return s, nil
		}
	}
}

func (p *parser) parseColNameList() ([]string, error) {
	if err := p.expectPunct("("); err != nil {
		return nil, err
	}
	var cols []string
	for {
		c, err := p.ident()
		if err != nil {
			return nil, err
		}
		cols = append(cols, c)
		if !p.maybePunct(",") {
			break
		}
	}
	if err := p.expectPunct(")"); err != nil {
		return nil, err
	}
	return cols, nil
}

func (p *parser) parseColumnDef() (*ColumnDef, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	typ, err := p.ident()
	if err != nil {
		return nil, err
	}
	col := &ColumnDef{Name: name, Type: typ}
	for {
		switch {
		case p.maybeKw("NOT"):
			switch {
			case p.maybeKw("NULL"):
				col.NotNull = true
			case p.maybeKw("VISIBLE"):
				col.NotVisible = true
			default:
				return nil, fmt.Errorf("sql: expected NULL or VISIBLE after NOT")
			}
		case p.maybeKw("PRIMARY"):
			if err := p.expectKw("KEY"); err != nil {
				return nil, err
			}
			col.PrimaryKey = true
		case p.maybeKw("UNIQUE"):
			col.Unique = true
		case p.maybeKw("DEFAULT"):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			col.Default = e
		case p.maybeKw("AS"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
			if err := p.expectKw("STORED"); err != nil {
				return nil, err
			}
			col.Computed = e
		case p.maybeKw("ON"):
			if err := p.expectKw("UPDATE"); err != nil {
				return nil, err
			}
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if fc, ok := e.(*FuncCall); ok && fc.Name == "rehome_row" {
				col.OnUpdateRehome = true
			} else {
				return nil, fmt.Errorf("sql: only rehome_row() is supported in ON UPDATE")
			}
		default:
			return col, nil
		}
	}
}

func (p *parser) parseCreateIndex(unique bool) (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("ON"); err != nil {
		return nil, err
	}
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	cols, err := p.parseColNameList()
	if err != nil {
		return nil, err
	}
	return &CreateIndex{Name: name, Table: table, Unique: unique, Cols: cols}, nil
}

func (p *parser) parseAlterTable() (Statement, error) {
	table, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	if err := p.expectKw("LOCALITY"); err != nil {
		return nil, err
	}
	lc, err := p.parseLocality()
	if err != nil {
		return nil, err
	}
	return &AlterTableLocality{Table: table, Locality: *lc}, nil
}

func (p *parser) parseInsert(upsert bool) (Statement, error) {
	if err := p.expectKw("INTO"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	s := &Insert{Table: table, Upsert: upsert}
	if p.maybePunct("(") {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c)
			if !p.maybePunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
	}
	if err := p.expectKw("VALUES"); err != nil {
		return nil, err
	}
	for {
		if err := p.expectPunct("("); err != nil {
			return nil, err
		}
		var row []Expr
		for {
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			row = append(row, e)
			if !p.maybePunct(",") {
				break
			}
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		s.Rows = append(s.Rows, row)
		if !p.maybePunct(",") {
			break
		}
	}
	return s, nil
}

func (p *parser) parseSelect() (Statement, error) {
	s := &Select{}
	if p.maybePunct("*") {
		s.Columns = nil
	} else {
		for {
			c, err := p.ident()
			if err != nil {
				return nil, err
			}
			s.Columns = append(s.Columns, c)
			if !p.maybePunct(",") {
				break
			}
		}
	}
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	s.Table = table
	if p.maybeKw("AS") {
		if err := p.expectKw("OF"); err != nil {
			return nil, err
		}
		if err := p.expectKw("SYSTEM"); err != nil {
			return nil, err
		}
		if err := p.expectKw("TIME"); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		asOf := &AsOf{}
		if fc, ok := e.(*FuncCall); ok {
			switch fc.Name {
			case "with_min_timestamp":
				asOf.MinTimestamp = fc.Args[0]
			case "with_max_staleness":
				asOf.MaxStaleness = fc.Args[0]
			default:
				asOf.Exact = e
			}
		} else {
			asOf.Exact = e
		}
		s.AsOf = asOf
	}
	if p.maybeKw("WHERE") {
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	if p.maybeKw("LIMIT") {
		t := p.cur()
		if t.kind != tkNumber {
			return nil, fmt.Errorf("sql: expected number after LIMIT")
		}
		n, err := strconv.Atoi(t.text)
		if err != nil {
			return nil, err
		}
		p.advance()
		s.Limit = n
	}
	return s, nil
}

func (p *parser) parseWhere() (*Where, error) {
	w := &Where{}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		cond := Cond{Col: col}
		switch {
		case p.maybePunct("="):
			e, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			cond.Op = OpEq
			cond.Vals = []Expr{e}
		case p.maybeKw("IN"):
			if err := p.expectPunct("("); err != nil {
				return nil, err
			}
			cond.Op = OpIn
			for {
				e, err := p.parseExpr()
				if err != nil {
					return nil, err
				}
				cond.Vals = append(cond.Vals, e)
				if !p.maybePunct(",") {
					break
				}
			}
			if err := p.expectPunct(")"); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("sql: expected = or IN after %q", col)
		}
		w.Conds = append(w.Conds, cond)
		if !p.maybeKw("AND") {
			break
		}
	}
	return w, nil
}

func (p *parser) parseUpdate() (Statement, error) {
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	if err := p.expectKw("SET"); err != nil {
		return nil, err
	}
	s := &Update{Table: table}
	for {
		col, err := p.ident()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct("="); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		s.Set = append(s.Set, Assignment{Col: col, Val: e})
		if !p.maybePunct(",") {
			break
		}
	}
	if p.maybeKw("WHERE") {
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) parseDelete() (Statement, error) {
	if err := p.expectKw("FROM"); err != nil {
		return nil, err
	}
	table, err := p.tableName()
	if err != nil {
		return nil, err
	}
	s := &Delete{Table: table}
	if p.maybeKw("WHERE") {
		w, err := p.parseWhere()
		if err != nil {
			return nil, err
		}
		s.Where = w
	}
	return s, nil
}

func (p *parser) parseSetVar() (Statement, error) {
	name, err := p.ident()
	if err != nil {
		return nil, err
	}
	if err := p.expectPunct("="); err != nil {
		return nil, err
	}
	t := p.cur()
	if t.kind != tkIdent && t.kind != tkString && t.kind != tkNumber {
		return nil, fmt.Errorf("sql: expected value in SET")
	}
	p.advance()
	return &SetVar{Name: name, Value: strings.ToLower(t.text)}, nil
}

// parseExpr parses expressions with '=' lowest, then +/-, then primaries.
func (p *parser) parseExpr() (Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if p.maybePunct("=") {
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &BinaryExpr{Op: "=", L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for {
		var op string
		if p.maybePunct("+") {
			op = "+"
		} else if p.maybePunct("-") {
			op = "-"
		} else {
			return l, nil
		}
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &BinaryExpr{Op: op, L: l, R: r}
	}
}

func (p *parser) parsePrimary() (Expr, error) {
	t := p.cur()
	switch {
	case t.kind == tkString:
		p.advance()
		return &Lit{Val: t.text}, nil
	case t.kind == tkPlaceholder:
		p.advance()
		n, err := strconv.Atoi(t.text)
		if err != nil || n < 1 {
			return nil, fmt.Errorf("sql: bad placeholder $%s", t.text)
		}
		return &Placeholder{Idx: n}, nil
	case t.kind == tkNumber:
		p.advance()
		if strings.Contains(t.text, ".") {
			f, err := strconv.ParseFloat(t.text, 64)
			if err != nil {
				return nil, err
			}
			return &Lit{Val: f}, nil
		}
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, err
		}
		return &Lit{Val: n}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "NULL"):
		p.advance()
		return &Lit{Val: nil}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "TRUE"):
		p.advance()
		return &Lit{Val: true}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "FALSE"):
		p.advance()
		return &Lit{Val: false}, nil
	case t.kind == tkIdent && strings.EqualFold(t.text, "CASE"):
		p.advance()
		return p.parseCase()
	case t.kind == tkIdent:
		name := strings.ToLower(t.text)
		p.advance()
		if p.maybePunct("(") {
			fc := &FuncCall{Name: name}
			if !p.maybePunct(")") {
				for {
					arg, err := p.parseExpr()
					if err != nil {
						return nil, err
					}
					fc.Args = append(fc.Args, arg)
					if !p.maybePunct(",") {
						break
					}
				}
				if err := p.expectPunct(")"); err != nil {
					return nil, err
				}
			}
			return fc, nil
		}
		return &ColRef{Name: name}, nil
	case t.kind == tkPunct && t.text == "(":
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectPunct(")"); err != nil {
			return nil, err
		}
		return e, nil
	}
	return nil, fmt.Errorf("sql: unexpected token %q in expression", t.text)
}

func (p *parser) parseCase() (Expr, error) {
	c := &CaseExpr{}
	for p.maybeKw("WHEN") {
		cond, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if err := p.expectKw("THEN"); err != nil {
			return nil, err
		}
		then, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Whens = append(c.Whens, CaseWhen{Cond: cond, Then: then})
	}
	if len(c.Whens) == 0 {
		return nil, fmt.Errorf("sql: CASE requires at least one WHEN")
	}
	if p.maybeKw("ELSE") {
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		c.Else = e
	}
	if err := p.expectKw("END"); err != nil {
		return nil, err
	}
	return c, nil
}

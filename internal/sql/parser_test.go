package sql

import (
	"testing"

	"mrdb/internal/core"
)

func mustParse(t *testing.T, src string) Statement {
	t.Helper()
	stmt, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse(%q): %v", src, err)
	}
	return stmt
}

func TestParseCreateDatabase(t *testing.T) {
	stmt := mustParse(t, `CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "us-west1", "europe-west2"`)
	cd := stmt.(*CreateDatabase)
	if cd.Name != "movr" || cd.PrimaryRegion != "us-east1" || len(cd.Regions) != 2 {
		t.Fatalf("%+v", cd)
	}
}

func TestParseAlterDatabase(t *testing.T) {
	ad := mustParse(t, `ALTER DATABASE movr ADD REGION "australia-southeast1"`).(*AlterDatabase)
	if ad.AddRegion != "australia-southeast1" {
		t.Fatalf("%+v", ad)
	}
	ad = mustParse(t, `ALTER DATABASE movr DROP REGION "us-west1"`).(*AlterDatabase)
	if ad.DropRegion != "us-west1" {
		t.Fatalf("%+v", ad)
	}
	ad = mustParse(t, `ALTER DATABASE movr SURVIVE REGION FAILURE`).(*AlterDatabase)
	if ad.Survive == nil || *ad.Survive != core.SurviveRegion {
		t.Fatalf("%+v", ad)
	}
	ad = mustParse(t, `ALTER DATABASE movr SURVIVE ZONE FAILURE`).(*AlterDatabase)
	if ad.Survive == nil || *ad.Survive != core.SurviveZone {
		t.Fatalf("%+v", ad)
	}
	ad = mustParse(t, `ALTER DATABASE movr PLACEMENT RESTRICTED`).(*AlterDatabase)
	if ad.Placement == nil || *ad.Placement != core.PlacementRestricted {
		t.Fatalf("%+v", ad)
	}
}

func TestParseCreateTableLocalities(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE users (id UUID PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`).(*CreateTable)
	if ct.Locality == nil || ct.Locality.Kind != core.RegionalByRow {
		t.Fatalf("%+v", ct.Locality)
	}
	if len(ct.Columns) != 3 || !ct.Columns[0].PrimaryKey || !ct.Columns[1].Unique {
		t.Fatalf("%+v", ct.Columns)
	}

	ct = mustParse(t, `CREATE TABLE promo_codes (code STRING PRIMARY KEY) LOCALITY GLOBAL`).(*CreateTable)
	if ct.Locality.Kind != core.Global {
		t.Fatal("GLOBAL locality not parsed")
	}

	ct = mustParse(t, `CREATE TABLE west (id INT PRIMARY KEY) LOCALITY REGIONAL BY TABLE IN "us-west1"`).(*CreateTable)
	if ct.Locality.Kind != core.RegionalByTable || ct.Locality.Region != "us-west1" {
		t.Fatalf("%+v", ct.Locality)
	}

	ct = mustParse(t, `CREATE TABLE t (id INT PRIMARY KEY) LOCALITY REGIONAL BY TABLE IN PRIMARY REGION`).(*CreateTable)
	if ct.Locality.Kind != core.RegionalByTable || ct.Locality.Region != "" {
		t.Fatalf("%+v", ct.Locality)
	}
}

func TestParseCreateTableConstraintsAndDefaults(t *testing.T) {
	ct := mustParse(t, `CREATE TABLE t (
		id UUID PRIMARY KEY DEFAULT gen_random_uuid(),
		city STRING NOT NULL,
		crdb_region crdb_internal_region NOT VISIBLE NOT NULL DEFAULT gateway_region() ON UPDATE rehome_row(),
		PRIMARY KEY (id),
		UNIQUE (city, id)
	)`)
	_ = ct
	// The duplicate PRIMARY KEY is caught at execution, not parse, time.
	c := mustParse(t, `CREATE TABLE u (
		id INT PRIMARY KEY,
		r crdb_internal_region AS (CASE WHEN state = 'CA' THEN 'us-west1' ELSE 'us-east1' END) STORED
	)`).(*CreateTable)
	if c.Columns[1].Computed == nil {
		t.Fatal("computed column not parsed")
	}
	ce, ok := c.Columns[1].Computed.(*CaseExpr)
	if !ok || len(ce.Whens) != 1 || ce.Else == nil {
		t.Fatalf("%+v", c.Columns[1].Computed)
	}
	d := mustParse(t, `CREATE TABLE v (id INT PRIMARY KEY) WITH DUPLICATE INDEXES`).(*CreateTable)
	if !d.DuplicateIndexes {
		t.Fatal("WITH DUPLICATE INDEXES not parsed")
	}
}

func TestParseAlterTableLocality(t *testing.T) {
	at := mustParse(t, `ALTER TABLE promo_codes SET LOCALITY GLOBAL`).(*AlterTableLocality)
	if at.Table != "promo_codes" || at.Locality.Kind != core.Global {
		t.Fatalf("%+v", at)
	}
}

func TestParseInsert(t *testing.T) {
	in := mustParse(t, `INSERT INTO users (id, email) VALUES (1, 'a@b.c'), (2, 'd@e.f')`).(*Insert)
	if in.Table != "users" || len(in.Columns) != 2 || len(in.Rows) != 2 {
		t.Fatalf("%+v", in)
	}
	if v := in.Rows[0][1].(*Lit).Val; v != "a@b.c" {
		t.Fatalf("value %v", v)
	}
	in = mustParse(t, `INSERT INTO t VALUES (gateway_region(), -5, 2.5, NULL, TRUE)`).(*Insert)
	if len(in.Rows[0]) != 5 {
		t.Fatalf("%+v", in.Rows[0])
	}
	if _, ok := in.Rows[0][0].(*FuncCall); !ok {
		t.Fatal("function call not parsed")
	}
	if in.Rows[0][1].(*Lit).Val.(int64) != -5 {
		t.Fatal("negative literal")
	}
}

func TestParseSelect(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM users WHERE email = 'some-email'`).(*Select)
	if sel.Columns != nil || sel.Table != "users" || len(sel.Where.Conds) != 1 {
		t.Fatalf("%+v", sel)
	}
	sel = mustParse(t, `SELECT id, name FROM users WHERE id IN (1, 2, 3) AND city = 'nyc' LIMIT 10`).(*Select)
	if len(sel.Columns) != 2 || len(sel.Where.Conds) != 2 || sel.Limit != 10 {
		t.Fatalf("%+v", sel)
	}
	if sel.Where.Conds[0].Op != OpIn || len(sel.Where.Conds[0].Vals) != 3 {
		t.Fatalf("%+v", sel.Where.Conds[0])
	}
}

func TestParseAsOfSystemTime(t *testing.T) {
	sel := mustParse(t, `SELECT * FROM t AS OF SYSTEM TIME '-30s'`).(*Select)
	if sel.AsOf == nil || sel.AsOf.Exact == nil {
		t.Fatalf("%+v", sel.AsOf)
	}
	sel = mustParse(t, `SELECT * FROM t AS OF SYSTEM TIME with_max_staleness('30s')`).(*Select)
	if sel.AsOf == nil || sel.AsOf.MaxStaleness == nil {
		t.Fatalf("%+v", sel.AsOf)
	}
	sel = mustParse(t, `SELECT * FROM t AS OF SYSTEM TIME with_min_timestamp('-10s')`).(*Select)
	if sel.AsOf == nil || sel.AsOf.MinTimestamp == nil {
		t.Fatalf("%+v", sel.AsOf)
	}
}

func TestParseUpdateDelete(t *testing.T) {
	up := mustParse(t, `UPDATE users SET name = 'x', age = age + 1 WHERE id = 7`).(*Update)
	if up.Table != "users" || len(up.Set) != 2 || up.Where == nil {
		t.Fatalf("%+v", up)
	}
	be, ok := up.Set[1].Val.(*BinaryExpr)
	if !ok || be.Op != "+" {
		t.Fatalf("%+v", up.Set[1].Val)
	}
	del := mustParse(t, `DELETE FROM users WHERE id = 7`).(*Delete)
	if del.Table != "users" || del.Where == nil {
		t.Fatalf("%+v", del)
	}
}

func TestParseSetAndShow(t *testing.T) {
	sv := mustParse(t, `SET enable_auto_rehoming = on`).(*SetVar)
	if sv.Name != "enable_auto_rehoming" || sv.Value != "on" {
		t.Fatalf("%+v", sv)
	}
	sr := mustParse(t, `SHOW REGIONS FROM DATABASE movr`).(*ShowRegions)
	if sr.Database != "movr" {
		t.Fatalf("%+v", sr)
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		``,
		`SELEC * FROM t`,
		`SELECT FROM t`,
		`CREATE TABLE`,
		`INSERT INTO t`,
		`SELECT * FROM t WHERE`,
		`SELECT * FROM t WHERE a >`,
		`CREATE TABLE t (a INT PRIMARY KEY) LOCALITY REGIONAL BY COLUMN`,
		`SELECT * FROM t; SELECT * FROM u`,
		`SELECT * FROM t WHERE a = 'unterminated`,
	}
	for _, src := range bad {
		if _, err := Parse(src); err == nil {
			t.Errorf("Parse(%q) succeeded, want error", src)
		}
	}
}

func TestParseComments(t *testing.T) {
	sel := mustParse(t, "SELECT * FROM t -- trailing comment\nWHERE a = 1").(*Select)
	if sel.Where == nil {
		t.Fatal("comment swallowed the WHERE")
	}
}

package sql

import (
	"fmt"

	"mrdb/internal/core"
	"mrdb/internal/kv"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
)

// DDL execution. Schema changes here are applied synchronously; the
// paper's zero-downtime online schema changes ([60] §5.4) are replaced by
// atomic catalog swaps under the simulator's cooperative scheduler, noted
// in DESIGN.md.

func (s *Session) execCreateDatabase(st *CreateDatabase) (*Result, error) {
	if st.PrimaryRegion == "" {
		return nil, fmt.Errorf("sql: CREATE DATABASE requires PRIMARY REGION in a multi-region cluster")
	}
	primary := simnet.Region(st.PrimaryRegion)
	clusterRegions := map[simnet.Region]bool{}
	for _, r := range s.Cluster.Topo.Regions() {
		clusterRegions[r] = true
	}
	if !clusterRegions[primary] {
		return nil, fmt.Errorf("sql: region %q has no nodes in this cluster", primary)
	}
	var others []simnet.Region
	for _, r := range st.Regions {
		rr := simnet.Region(r)
		if !clusterRegions[rr] {
			return nil, fmt.Errorf("sql: region %q has no nodes in this cluster", rr)
		}
		others = append(others, rr)
	}
	db := core.NewDatabase(st.Name, primary, others...)
	if err := s.Catalog.CreateDatabase(db); err != nil {
		return nil, err
	}
	s.Database = st.Name
	return &Result{}, nil
}

func (s *Session) execAlterDatabase(p *sim.Proc, st *AlterDatabase) (*Result, error) {
	db, ok := s.Catalog.Database(st.Name)
	if !ok {
		return nil, fmt.Errorf("sql: database %q does not exist", st.Name)
	}
	switch {
	case st.AddRegion != "":
		return s.execAddRegion(p, db, simnet.Region(st.AddRegion))
	case st.DropRegion != "":
		return s.execDropRegion(p, db, simnet.Region(st.DropRegion))
	case st.Survive != nil:
		if err := db.SetSurvivalGoal(*st.Survive); err != nil {
			return nil, err
		}
		s.Catalog.Bump()
		return &Result{}, s.reconfigureAllTables(p, db)
	case st.Placement != nil:
		if err := db.SetPlacement(*st.Placement); err != nil {
			return nil, err
		}
		s.Catalog.Bump()
		return &Result{}, s.reconfigureAllTables(p, db)
	case st.SetPrimary != "":
		r := simnet.Region(st.SetPrimary)
		if !db.HasRegion(r) {
			if err := db.AddRegion(r); err != nil {
				return nil, err
			}
		}
		db.PrimaryRegion = r
		s.Catalog.Bump()
		return &Result{}, s.reconfigureAllTables(p, db)
	}
	return nil, fmt.Errorf("sql: empty ALTER DATABASE")
}

// execAddRegion implements ALTER DATABASE ... ADD REGION: extend the enum,
// create new partitions for REGIONAL BY ROW tables, and rebalance every
// range so the new region gets its replica (§2.4.1, §3.3).
func (s *Session) execAddRegion(p *sim.Proc, db *core.Database, region simnet.Region) (*Result, error) {
	found := false
	for _, r := range s.Cluster.Topo.Regions() {
		if r == region {
			found = true
		}
	}
	if !found {
		return nil, fmt.Errorf("sql: region %q has no nodes in this cluster", region)
	}
	if err := db.AddRegion(region); err != nil {
		return nil, err
	}
	// Invalidate cached plans before the partition builds below can yield:
	// region sets feed cached search orders and partition lists.
	s.Catalog.Bump()
	// New partitions for REGIONAL BY ROW tables.
	for _, t := range s.Catalog.Tables(db.Name) {
		if t.Locality != core.RegionalByRow {
			continue
		}
		tp, err := db.PlacementForTable(core.RegionalByRow, "")
		if err != nil {
			return nil, err
		}
		alloc := s.Cluster.Allocator()
		for _, idx := range t.Indexes {
			if err := s.createRangeForSpan(t, idx.ID, region, tp.Home[region], tp.Policy, alloc); err != nil {
				return nil, err
			}
		}
		// The new partitions must elect Raft leaders before
		// reconfigureAllTables proposes conf changes through them.
		for _, idx := range t.Indexes {
			start, _ := IndexSpan(t, idx.ID, region)
			desc, err := s.Cluster.Catalog.Lookup(start)
			if err != nil {
				return nil, err
			}
			if err := s.Cluster.Admin.WaitReady(p, desc.RangeID); err != nil {
				return nil, err
			}
		}
	}
	return &Result{}, s.reconfigureAllTables(p, db)
}

// execDropRegion implements ALTER DATABASE ... DROP REGION with READ ONLY
// validation (§2.4.1).
func (s *Session) execDropRegion(p *sim.Proc, db *core.Database, region simnet.Region) (*Result, error) {
	validator := func(r simnet.Region) (bool, error) {
		// Because crdb_region prefixes every partition, validation scans
		// only the dropped region's partitions (paper footnote 2).
		for _, t := range s.Catalog.Tables(db.Name) {
			if t.Locality != core.RegionalByRow {
				continue
			}
			start, end := IndexSpan(t, t.Primary().ID, r)
			var rows int
			err := s.Coord.Run(p, func(tx *txn.Txn) error {
				kvs, err := tx.Scan(p, start, end, 1)
				if err != nil {
					return err
				}
				rows = len(kvs)
				return nil
			})
			if err != nil {
				return false, err
			}
			if rows > 0 {
				return true, nil
			}
		}
		return false, nil
	}
	if err := db.DropRegion(region, validator); err != nil {
		return nil, err
	}
	// The region set changed (and transitioned through READ ONLY during
	// validation); no cached plan may keep probing the dropped partition.
	s.Catalog.Bump()
	// Remove the dropped region's partitions.
	for _, t := range s.Catalog.Tables(db.Name) {
		if t.Locality != core.RegionalByRow {
			continue
		}
		for _, idx := range t.Indexes {
			start, _ := IndexSpan(t, idx.ID, region)
			desc, err := s.Cluster.Catalog.Lookup(start)
			if err != nil {
				continue
			}
			for _, id := range desc.Replicas() {
				s.Cluster.Stores[id].RemoveReplica(desc.RangeID)
			}
			s.Cluster.Catalog.Remove(desc.RangeID)
		}
	}
	return &Result{}, s.reconfigureAllTables(p, db)
}

// reconfigureAllTables recomputes zone configs for every range of the
// database and relocates replicas accordingly (survivability, placement or
// region-set changes).
func (s *Session) reconfigureAllTables(p *sim.Proc, db *core.Database) error {
	// Zone-config changes invalidate cached plans too (defensive: plan
	// shapes derive from the catalog, but placement moves change which
	// gateway-first orders are profitable and this path is never hot).
	s.Catalog.Bump()
	alloc := s.Cluster.Allocator()
	for _, t := range s.Catalog.Tables(db.Name) {
		tp, err := db.PlacementForTable(t.Locality, t.HomeRegion)
		if err != nil {
			return err
		}
		for _, idx := range t.Indexes {
			for _, region := range partitionsOf(t, db) {
				home := region
				if home == "" {
					if t.DuplicateIndexes && idx.PinnedRegion != "" {
						home = idx.PinnedRegion
					} else if t.Locality == core.Global || t.HomeRegion == "" {
						home = db.PrimaryRegion
					} else {
						home = t.HomeRegion
					}
				}
				var cfg = tp.Home[home]
				if t.DuplicateIndexes && idx.PinnedRegion != "" {
					c, err := db.ZoneConfigForHome(idx.PinnedRegion, false)
					if err != nil {
						return err
					}
					cfg = c
				}
				if cfg.NumReplicas == 0 {
					c, err := db.ZoneConfigForHome(home, t.Locality == core.Global)
					if err != nil {
						return err
					}
					cfg = c
				}
				start, _ := IndexSpan(t, idx.ID, region)
				desc, err := s.Cluster.Catalog.Lookup(start)
				if err != nil {
					return err
				}
				placement, err := alloc.Allocate(cfg)
				if err != nil {
					return err
				}
				if err := s.Cluster.Admin.RelocateWithConfig(p, desc.RangeID, placement, tp.Policy, &cfg); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

func typeFromName(name string) (ColType, error) {
	switch name {
	case "string", "text", "varchar":
		return TString, nil
	case "int", "int8", "bigint", "integer":
		return TInt, nil
	case "float", "float8", "double":
		return TFloat, nil
	case "bool", "boolean":
		return TBool, nil
	case "uuid":
		return TUUID, nil
	case "timestamp", "timestamptz":
		return TTimestamp, nil
	case "crdb_internal_region":
		return TRegion, nil
	}
	return 0, fmt.Errorf("sql: unknown type %q", name)
}

func (s *Session) execCreateTable(p *sim.Proc, st *CreateTable) (*Result, error) {
	db, err := s.database()
	if err != nil {
		return nil, err
	}
	t := &Table{Name: st.Name, DB: db.Name, Locality: core.RegionalByTable}
	if st.Locality != nil {
		t.Locality = st.Locality.Kind
		if st.Locality.Region != "" {
			t.HomeRegion = simnet.Region(st.Locality.Region)
			if !db.HasRegion(t.HomeRegion) {
				return nil, fmt.Errorf("sql: region %q not in database %q", t.HomeRegion, db.Name)
			}
		}
	}
	t.DuplicateIndexes = st.DuplicateIndexes
	if t.DuplicateIndexes && t.Locality != core.RegionalByTable {
		return nil, fmt.Errorf("sql: WITH DUPLICATE INDEXES applies to REGIONAL BY TABLE tables")
	}

	var pkCols []string
	var uniqueCols [][]string
	for _, cd := range st.Columns {
		typ, err := typeFromName(cd.Type)
		if err != nil {
			return nil, err
		}
		col := &Column{
			Name: cd.Name, Type: typ, NotNull: cd.NotNull || cd.PrimaryKey,
			Hidden: cd.NotVisible, Default: cd.Default, Computed: cd.Computed,
			OnUpdateRehome: cd.OnUpdateRehome,
		}
		t.AddColumn(col)
		if cd.PrimaryKey {
			pkCols = append(pkCols, cd.Name)
		}
		if cd.Unique {
			uniqueCols = append(uniqueCols, []string{cd.Name})
		}
	}
	if len(st.PrimaryKey) > 0 {
		if len(pkCols) > 0 {
			return nil, fmt.Errorf("sql: duplicate PRIMARY KEY specification")
		}
		pkCols = st.PrimaryKey
	}
	if len(pkCols) == 0 {
		return nil, fmt.Errorf("sql: table %q requires a primary key", st.Name)
	}
	uniqueCols = append(uniqueCols, st.Uniques...)

	// REGIONAL BY ROW: ensure the partitioning column exists (§2.3.2);
	// users may declare crdb_region themselves (computed partitioning).
	if t.Locality == core.RegionalByRow {
		if col, ok := t.Column(RegionColumnName); ok {
			if col.Type != TRegion {
				return nil, fmt.Errorf("sql: %s must have type crdb_internal_region", RegionColumnName)
			}
			t.RegionColumn = col.ID
		} else {
			col := t.AddColumn(&Column{
				Name: RegionColumnName, Type: TRegion, NotNull: true, Hidden: true,
				Default: &FuncCall{Name: "gateway_region"},
			})
			t.RegionColumn = col.ID
		}
	}

	resolveCols := func(names []string) ([]ColumnID, error) {
		var ids []ColumnID
		for _, n := range names {
			c, ok := t.Column(n)
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q", n)
			}
			ids = append(ids, c.ID)
		}
		return ids, nil
	}

	pkIDs, err := resolveCols(pkCols)
	if err != nil {
		return nil, err
	}
	t.AddIndex(&Index{Name: "primary", Unique: true, Cols: pkIDs})
	for _, uc := range uniqueCols {
		ids, err := resolveCols(uc)
		if err != nil {
			return nil, err
		}
		t.AddIndex(&Index{Name: fmt.Sprintf("%s_%s_key", t.Name, uc[0]), Unique: true, Cols: ids})
	}
	// Duplicate-indexes baseline (§7.3.1): one covering index per
	// non-primary region, leaseholder pinned there; the primary index
	// serves the primary region.
	if t.DuplicateIndexes {
		var allCols []ColumnID
		for _, c := range t.Columns {
			allCols = append(allCols, c.ID)
		}
		t.Indexes[0].PinnedRegion = db.PrimaryRegion
		for _, r := range db.Regions() {
			if r == db.PrimaryRegion {
				continue
			}
			t.AddIndex(&Index{
				Name: fmt.Sprintf("%s_dup_%s", t.Name, r), Unique: true,
				Cols: pkIDs, Storing: allCols, PinnedRegion: r,
			})
		}
	}

	if err := s.Catalog.CreateTable(t); err != nil {
		return nil, err
	}
	for _, idx := range t.Indexes {
		if err := s.createIndexRanges(t, db, idx); err != nil {
			return nil, err
		}
	}
	if p != nil {
		if err := s.waitTableReady(p, t, db); err != nil {
			return nil, err
		}
	}
	return &Result{}, nil
}

func (s *Session) execCreateIndex(p *sim.Proc, st *CreateIndex) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	var ids []ColumnID
	for _, n := range st.Cols {
		c, ok := t.Column(n)
		if !ok {
			return nil, fmt.Errorf("sql: unknown column %q", n)
		}
		ids = append(ids, c.ID)
	}
	idx := t.AddIndex(&Index{Name: st.Name, Unique: st.Unique, Cols: ids})
	// Bump before the range builds below yield: index choice is cached.
	s.Catalog.Bump()
	if err := s.createIndexRanges(t, db, idx); err != nil {
		return nil, err
	}
	// Backfill from the primary index.
	if err := s.backfillIndex(p, t, db, idx); err != nil {
		return nil, err
	}
	return &Result{}, nil
}

// execAlterTableLocality implements ALTER TABLE ... SET LOCALITY. Changing
// to or from REGIONAL BY ROW rebuilds every index under a new index ID with
// the partitioning prefix added or removed, then swaps (§2.4.2); other
// changes only move replicas.
func (s *Session) execAlterTableLocality(p *sim.Proc, st *AlterTableLocality) (*Result, error) {
	t, db, err := s.table(st.Table)
	if err != nil {
		return nil, err
	}
	newLoc := st.Locality.Kind
	newHome := simnet.Region(st.Locality.Region)
	if newHome != "" && !db.HasRegion(newHome) {
		return nil, fmt.Errorf("sql: region %q not in database %q", newHome, db.Name)
	}
	if t.DuplicateIndexes {
		return nil, fmt.Errorf("sql: cannot change locality of a duplicate-indexes table")
	}
	repartition := (t.Locality == core.RegionalByRow) != (newLoc == core.RegionalByRow)
	if !repartition {
		// Metadata + zone-config change only (§2.4.2).
		t.Locality = newLoc
		t.HomeRegion = newHome
		s.Catalog.Bump()
		return &Result{}, s.reconfigureAllTables(p, db)
	}

	// Index swap: build new indexes with/without the region prefix.
	oldIndexes := t.Indexes
	oldPartitioned := t.IsPartitioned()
	oldLoc := t.Locality

	// Adding the partition column when converting to RBR.
	t.Locality = newLoc
	t.HomeRegion = newHome
	if newLoc == core.RegionalByRow && t.RegionColumn == 0 {
		col := t.AddColumn(&Column{
			Name: RegionColumnName, Type: TRegion, NotNull: true, Hidden: true,
			Default: &FuncCall{Name: "gateway_region"},
		})
		t.RegionColumn = col.ID
	}

	// Locality and the column/index set are changing across yields below;
	// bump at every mutation so no cached plan spans a partial swap.
	s.Catalog.Bump()
	var newIndexes []*Index
	for _, old := range oldIndexes {
		ni := t.AddIndex(&Index{Name: old.Name, Unique: old.Unique, Cols: old.Cols, Storing: old.Storing})
		newIndexes = append(newIndexes, ni)
		s.Catalog.Bump()
		if err := s.createIndexRanges(t, db, ni); err != nil {
			return nil, err
		}
	}
	if p != nil {
		if err := s.waitTableReady(p, t, db); err != nil {
			return nil, err
		}
	}
	// Backfill rows from the old primary index into the new indexes.
	if err := s.backfillLocalityChange(p, t, db, oldIndexes[0], oldPartitioned, newIndexes); err != nil {
		return nil, err
	}
	// Swap: the new indexes replace the old; drop old ranges.
	t.Indexes = newIndexes
	s.Catalog.Bump()
	for _, old := range oldIndexes {
		regions := []simnet.Region{""}
		if oldPartitioned {
			regions = db.Regions()
		}
		_ = oldLoc
		for _, region := range regions {
			start, _ := IndexSpan(t, old.ID, region)
			if desc, err := s.Cluster.Catalog.Lookup(start); err == nil {
				for _, id := range desc.Replicas() {
					s.Cluster.Stores[id].RemoveReplica(desc.RangeID)
				}
				s.Cluster.Catalog.Remove(desc.RangeID)
			}
		}
	}
	return &Result{}, nil
}

var _ = kv.RangeID(0)

package sql

import (
	"strconv"
	"strings"
	"testing"

	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// setupMovrSurvivable is setupMovr with SURVIVE REGION FAILURE, the
// configuration under which the paper's §7.2 claims hold: a REGIONAL BY
// ROW home write needs exactly one inter-region quorum trip (2/2/1 voter
// spread, quorum 3, two local voters) and no commit-wait.
func (h *sqlHarness) setupMovrSurvivable(t *testing.T, p *sim.Proc) *Session {
	t.Helper()
	s := h.sessions[simnet.USEast1]
	stmts := []string{
		`CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`,
		`ALTER DATABASE movr SURVIVE REGION FAILURE`,
		`CREATE TABLE users (id INT PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`,
		`CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`,
	}
	for _, stmt := range stmts {
		if _, err := s.Exec(p, stmt); err != nil {
			t.Fatalf("%s: %v", stmt, err)
		}
	}
	for _, sess := range h.sessions {
		sess.Database = "movr"
	}
	p.Sleep(500 * sim.Millisecond) // closed timestamps propagate
	return s
}

// eaField extracts one field's value from an EXPLAIN ANALYZE result.
func eaField(t *testing.T, res *Result, field string) string {
	t.Helper()
	for _, row := range res.Rows {
		if row[0] == field {
			return row[1].(string)
		}
	}
	t.Fatalf("EXPLAIN ANALYZE output has no field %q: %v", field, res.Rows)
	return ""
}

// TestExplainAnalyzeRegionalHomeWrite pins the paper's §7.2 claim at the
// EXPLAIN ANALYZE surface: a point write to a REGIONAL BY ROW table from
// its home region pays exactly one inter-region quorum round trip and zero
// commit-wait, matching the PR 2 trace assertions.
func TestExplainAnalyzeRegionalHomeWrite(t *testing.T) {
	h := newSQLHarness(502)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovrSurvivable(t, p)
		// A pure point write: no uniqueness-check reads alongside it.
		s.UniquenessChecks = false
		res, err := s.Exec(p, `EXPLAIN ANALYZE INSERT INTO users (id, name) VALUES (1, 'alice')`)
		if err != nil {
			t.Fatal(err)
		}
		if got := eaField(t, res, "inter-region quorum trips"); got != "1" {
			t.Errorf("inter-region quorum trips = %s, want 1", got)
		}
		if got := eaField(t, res, "raft quorum trips"); got != "1" {
			t.Errorf("raft quorum trips = %s, want 1", got)
		}
		if got := eaField(t, res, "commit wait"); got != "0s" {
			t.Errorf("commit wait = %s, want 0s", got)
		}
		if got := eaField(t, res, "rows affected"); got != "1" {
			t.Errorf("rows affected = %s, want 1", got)
		}
		// The write took effect despite the EXPLAIN wrapper.
		sel, err := s.Exec(p, `SELECT name FROM users WHERE id = 1 AND crdb_region = 'us-east1'`)
		if err != nil || len(sel.Rows) != 1 {
			t.Fatalf("analyzed INSERT did not persist: %v %v", sel, err)
		}
		// EXPLAIN ANALYZE turned tracing on only for the statement.
		if h.c.Tracer.Enabled() {
			t.Error("tracer left enabled after EXPLAIN ANALYZE")
		}
	})
}

// TestExplainAnalyzeGlobalWrite pins the flip side: a GLOBAL table write
// commits in the future and must commit-wait (§4.4), which EXPLAIN ANALYZE
// reports as a nonzero commit-wait duration.
func TestExplainAnalyzeGlobalWrite(t *testing.T) {
	h := newSQLHarness(503)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovrSurvivable(t, p)
		res, err := s.Exec(p, `EXPLAIN ANALYZE INSERT INTO promo_codes (code, description) VALUES ('SAVE10', 'ten percent off')`)
		if err != nil {
			t.Fatal(err)
		}
		wait := eaField(t, res, "commit wait")
		d, perr := parseDuration(wait)
		if perr != nil || d <= 0 {
			t.Errorf("commit wait = %q, want a positive duration", wait)
		}
	})
}

// TestShowRangesLeaseEpoch covers the SHOW RANGES extension: every range
// reports the liveness epoch its lease is bound to.
func TestShowRangesLeaseEpoch(t *testing.T) {
	h := newSQLHarness(504)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovr(t, p)
		res, err := s.Exec(p, `SHOW RANGES FROM TABLE users`)
		if err != nil {
			t.Fatal(err)
		}
		idx := -1
		for i, c := range res.Columns {
			if c == "lease_epoch" {
				idx = i
			}
		}
		if idx < 0 {
			t.Fatalf("no lease_epoch column in %v", res.Columns)
		}
		for _, row := range res.Rows {
			if epoch, ok := row[idx].(int64); !ok || epoch < 1 {
				t.Errorf("lease_epoch = %v, want >= 1", row[idx])
			}
		}
	})
}

// virtualTables is the full mrdb_internal catalog.
var virtualTables = []string{
	"statement_statistics", "contention_events", "ranges", "node_liveness", "net_links",
}

// renderResult gives a canonical byte rendering of a result for
// determinism comparisons.
func renderResult(res *Result) string {
	var b strings.Builder
	b.WriteString(strings.Join(res.Columns, "|"))
	b.WriteByte('\n')
	for _, row := range res.Rows {
		for i, v := range row {
			if i > 0 {
				b.WriteByte('|')
			}
			b.WriteString(FormatDatum(v))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// TestVirtualTablesDeterministic runs the same workload under the same seed
// twice and requires byte-identical SELECT * output from every
// mrdb_internal table, plus sanity on their shape.
func TestVirtualTablesDeterministic(t *testing.T) {
	runOnce := func() map[string]string {
		out := map[string]string{}
		h := newSQLHarness(505)
		h.run(t, func(p *sim.Proc) {
			s := h.setupMovr(t, p)
			for _, stmt := range []string{
				`INSERT INTO users (id, email, name) VALUES (1, 'a@x.com', 'alice'), (2, 'b@x.com', 'bob')`,
				`SELECT * FROM users WHERE id = 1`,
				`SELECT * FROM users WHERE id = 9`,
				`UPDATE users SET name = 'al' WHERE id = 1`,
			} {
				if _, err := s.Exec(p, stmt); err != nil {
					t.Errorf("%s: %v", stmt, err)
					return
				}
			}
			for _, vt := range virtualTables {
				res, err := s.Exec(p, `SELECT * FROM mrdb_internal.`+vt)
				if err != nil {
					t.Errorf("select from %s: %v", vt, err)
					return
				}
				out[vt] = renderResult(res)
			}
		})
		return out
	}
	first, second := runOnce(), runOnce()
	for _, vt := range virtualTables {
		if first[vt] != second[vt] {
			t.Errorf("%s differs across same-seed runs:\n%s\nvs\n%s", vt, first[vt], second[vt])
		}
	}
	// Shape sanity: the workload above must surface statistics and state.
	if !strings.Contains(first["statement_statistics"], "INSERT INTO users") {
		t.Errorf("statement_statistics missing INSERT fingerprint:\n%s", first["statement_statistics"])
	}
	if strings.Count(first["ranges"], "\n") < 2 {
		t.Errorf("ranges nearly empty:\n%s", first["ranges"])
	}
	if strings.Count(first["node_liveness"], "\n") != 10 { // header + 9 nodes
		t.Errorf("node_liveness rows:\n%s", first["node_liveness"])
	}
	if strings.Count(first["net_links"], "\n") != 7 { // header + 6 region pairs
		t.Errorf("net_links rows:\n%s", first["net_links"])
	}
}

// TestVirtualTableSemantics covers filtering, projection, LIMIT,
// read-only enforcement, and that no current database is required.
func TestVirtualTableSemantics(t *testing.T) {
	h := newSQLHarness(506)
	h.run(t, func(p *sim.Proc) {
		h.setupMovr(t, p)
		// A fresh session with no current database can still introspect.
		fresh := NewSession(h.c, h.catalog, h.c.GatewayFor(simnet.EuropeW2))
		res, err := fresh.Exec(p, `SELECT node_id, region FROM mrdb_internal.node_liveness WHERE region = 'europe-west2' LIMIT 2`)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Columns) != 2 || len(res.Rows) != 2 {
			t.Errorf("filtered projection: %v %v", res.Columns, res.Rows)
		}
		for _, row := range res.Rows {
			if row[1] != "europe-west2" {
				t.Errorf("WHERE not applied: %v", row)
			}
		}
		if _, err := fresh.Exec(p, `INSERT INTO mrdb_internal.ranges (range_id) VALUES (1)`); err == nil ||
			!strings.Contains(err.Error(), "read-only") {
			t.Errorf("write to virtual table: err = %v, want read-only error", err)
		}
		if _, err := fresh.Exec(p, `DELETE FROM mrdb_internal.node_liveness`); err == nil ||
			!strings.Contains(err.Error(), "read-only") {
			t.Errorf("delete from virtual table: err = %v, want read-only error", err)
		}
		if _, err := fresh.Exec(p, `SELECT * FROM mrdb_internal.nonexistent`); err == nil {
			t.Error("unknown virtual table did not error")
		}
	})
}

// TestFingerprintNormalization pins the fingerprinting scheme: literals
// normalize away, multi-row VALUES collapse, IN lists collapse.
func TestFingerprintNormalization(t *testing.T) {
	fp := func(q string) string {
		stmt, err := Parse(q)
		if err != nil {
			t.Fatalf("%s: %v", q, err)
		}
		return Fingerprint(stmt)
	}
	a := fp(`INSERT INTO users (id, name) VALUES (1, 'alice')`)
	b := fp(`INSERT INTO users (id, name) VALUES (42, 'bob')`)
	if a != b {
		t.Errorf("literal normalization: %q vs %q", a, b)
	}
	if want := "INSERT INTO users (id, name) VALUES (_, _)"; a != want {
		t.Errorf("fingerprint = %q, want %q", a, want)
	}
	multi := fp(`INSERT INTO users (id, name) VALUES (1, 'a'), (2, 'b')`)
	if want := "INSERT INTO users (id, name) VALUES (_, _), ..."; multi != want {
		t.Errorf("multi-row fingerprint = %q, want %q", multi, want)
	}
	s1 := fp(`SELECT name FROM users WHERE id = 7 LIMIT 3`)
	s2 := fp(`SELECT name FROM users WHERE id = 9 LIMIT 5`)
	if s1 != s2 {
		t.Errorf("select normalization: %q vs %q", s1, s2)
	}
	in1 := fp(`SELECT * FROM users WHERE id IN (1, 2, 3)`)
	in2 := fp(`SELECT * FROM users WHERE id IN (4)`)
	if in1 != in2 || !strings.Contains(in1, "IN (_)") {
		t.Errorf("IN collapse: %q vs %q", in1, in2)
	}
	up := fp(`UPDATE users SET name = 'x' WHERE id = 1`)
	if want := "UPDATE users SET name = _ WHERE id = _"; up != want {
		t.Errorf("update fingerprint = %q, want %q", up, want)
	}
}

// TestExplainAnalyzeBatchedMultiRangeInsert is the acceptance check for the
// batched, range-aware dispatch: a 10-row INSERT spanning all three
// partitions of a REGIONAL BY ROW table reports KV batches and RPCs bounded
// by touched ranges per phase — not by row count — while "kv requests"
// still reflects the per-row work carried inside those batches.
func TestExplainAnalyzeBatchedMultiRangeInsert(t *testing.T) {
	h := newSQLHarness(507)
	h.run(t, func(p *sim.Proc) {
		s := h.setupMovrSurvivable(t, p)
		s.UniquenessChecks = false // local PK probes remain; no remote fan-out
		res, err := s.Exec(p, `EXPLAIN ANALYZE INSERT INTO users (id, email, name, crdb_region) VALUES
			(1, '1@x', 'a', 'us-east1'), (2, '2@x', 'b', 'europe-west2'), (3, '3@x', 'c', 'asia-northeast1'),
			(4, '4@x', 'd', 'us-east1'), (5, '5@x', 'e', 'europe-west2'), (6, '6@x', 'f', 'asia-northeast1'),
			(7, '7@x', 'g', 'us-east1'), (8, '8@x', 'h', 'europe-west2'), (9, '9@x', 'i', 'asia-northeast1'),
			(10, '10@x', 'j', 'us-east1')`)
		if err != nil {
			t.Fatal(err)
		}
		if got := eaField(t, res, "rows affected"); got != "10" {
			t.Errorf("rows affected = %s, want 10", got)
		}
		num := func(field string) int {
			v, err := strconv.Atoi(eaField(t, res, field))
			if err != nil {
				t.Fatalf("%s = %q, want a number", field, eaField(t, res, field))
			}
			return v
		}
		// Per-row work is still all there: >= 60 requests (20 uniqueness
		// probes, 20 index-entry writes, 20 intent proofs, plus commit) ...
		if reqs := num("kv requests"); reqs < 60 {
			t.Errorf("kv requests = %d, want >= 60 (per-row work carried in batches)", reqs)
		}
		// ... but it rides in at most phases x touched-ranges batches: the
		// statement touches 6 ranges (3 row partitions + 3 email-index
		// ranges), so probes, writes, and intent proofs cost 6 RPCs each
		// plus 1 commit = 19. Before batching, every request was its own
		// RPC (>= 60).
		if batches := num("kv batches"); batches > 19 {
			t.Errorf("kv batches = %d, want <= 19 (bounded by touched ranges)", batches)
		}
		if rpcs := num("kv rpcs"); rpcs > 22 {
			t.Errorf("kv rpcs = %d, want <= 22 (bounded by touched ranges, not rows)", rpcs)
		}
		// A scan over the split table fans out across the partitions and
		// merges every row back in key order.
		sel, err := s.Exec(p, `SELECT id, name FROM users`)
		if err != nil {
			t.Fatal(err)
		}
		if len(sel.Rows) != 10 {
			t.Errorf("post-insert scan: %d rows, want 10", len(sel.Rows))
		}
	})
}

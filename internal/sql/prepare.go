package sql

import (
	"fmt"
	"strings"

	"mrdb/internal/sim"
	"mrdb/internal/txn"
)

// Prepared statements: parse and fingerprint a DML statement once, then
// execute it repeatedly with placeholder arguments. Combined with the plan
// cache this takes parsing, fingerprinting and plan-shape work off the hot
// path entirely — each execution binds values into a cached plan.

// Prepared is a parsed, fingerprinted DML statement with $n placeholders.
type Prepared struct {
	Stmt Statement
	fp   string
	// numArgs is the highest placeholder index referenced.
	numArgs int
	// res is the reusable result buffer; ExecPrepared returns it (or a view
	// of it), so a result is valid only until the next execution of the
	// same Prepared.
	res Result
}

// Fingerprint returns the statement's fingerprint (computed at Prepare).
func (ps *Prepared) Fingerprint() string { return ps.fp }

// NumArgs returns how many placeholder arguments each execution takes.
func (ps *Prepared) NumArgs() int { return ps.numArgs }

// Prepare parses and prepares one DML statement for repeated execution.
func (s *Session) Prepare(sqlText string) (*Prepared, error) {
	stmt, err := Parse(sqlText)
	if err != nil {
		return nil, err
	}
	return s.PrepareStmt(stmt)
}

// MustPrepare is Prepare that panics on error; for tests and workloads.
func (s *Session) MustPrepare(sqlText string) *Prepared {
	ps, err := s.Prepare(sqlText)
	if err != nil {
		panic(fmt.Sprintf("sql: %v", err))
	}
	return ps
}

// PrepareStmt prepares an already-parsed DML statement.
func (s *Session) PrepareStmt(stmt Statement) (*Prepared, error) {
	switch stmt.(type) {
	case *Insert, *Select, *Update, *Delete:
	default:
		return nil, fmt.Errorf("sql: cannot prepare %T (DML only)", stmt)
	}
	return &Prepared{
		Stmt:    stmt,
		fp:      Fingerprint(stmt),
		numArgs: maxPlaceholder(stmt),
	}, nil
}

// ExecPrepared executes a prepared statement with the given placeholder
// arguments. Semantics match ExecStmt (auto-commit transaction with
// retries, root trace span, statement statistics under the prepared
// fingerprint); only the per-execution parse/fingerprint work and the
// result allocation are gone.
func (s *Session) ExecPrepared(p *sim.Proc, ps *Prepared, args ...Datum) (*Result, error) {
	if len(args) != ps.numArgs {
		return nil, fmt.Errorf("sql: prepared statement wants %d args, got %d", ps.numArgs, len(args))
	}
	sp, done := s.Cluster.Tracer.StartRootIn(p, "sql.exec")
	sp.SetTag("stmt", strings.TrimPrefix(fmt.Sprintf("%T", ps.Stmt), "*sql.")).
		SetTag("gateway_region", string(s.Region()))
	s.bindPrepared(ps, args)
	record := !isVirtualStmt(ps.Stmt)
	var start sim.Time
	var retries0, wan0 int64
	if record {
		start = p.Now()
		retries0 = s.Coord.Restarts
		wan0 = s.Coord.Sender.WANRPCs
	}
	res, err := s.execDML(p, ps.Stmt)
	if err != nil {
		sp.SetError(err)
	}
	done()
	if record {
		s.Cluster.StmtStats.Record(ps.fp, p.Now().Sub(start),
			s.Coord.Restarts-retries0, s.Coord.Sender.WANRPCs-wan0, err != nil)
	}
	s.unbindPrepared()
	return res, err
}

// ExecPreparedTxn executes a prepared statement inside the given
// transaction; the in-txn analogue of ExecStmtTxn (no statistics record,
// no root span — the enclosing RunTxn carries the trace).
func (s *Session) ExecPreparedTxn(p *sim.Proc, tx *txn.Txn, ps *Prepared, args ...Datum) (*Result, error) {
	if len(args) != ps.numArgs {
		return nil, fmt.Errorf("sql: prepared statement wants %d args, got %d", ps.numArgs, len(args))
	}
	s.bindPrepared(ps, args)
	res, err := s.execDMLInTxn(p, tx, ps.Stmt)
	s.unbindPrepared()
	return res, err
}

func (s *Session) bindPrepared(ps *Prepared, args []Datum) {
	s.phArgs = args
	s.curFP = ps.fp
	s.curRes = &ps.res
}

func (s *Session) unbindPrepared() {
	s.phArgs = nil
	s.curFP = ""
	s.curRes = nil
}

// maxPlaceholder returns the highest $n index in a statement.
func maxPlaceholder(stmt Statement) int {
	max := 0
	see := func(e Expr) {
		var walk func(Expr)
		walk = func(e Expr) {
			switch ex := e.(type) {
			case *Placeholder:
				if ex.Idx > max {
					max = ex.Idx
				}
			case *FuncCall:
				for _, a := range ex.Args {
					walk(a)
				}
			case *BinaryExpr:
				walk(ex.L)
				walk(ex.R)
			case *CaseExpr:
				for _, w := range ex.Whens {
					walk(w.Cond)
					walk(w.Then)
				}
				if ex.Else != nil {
					walk(ex.Else)
				}
			}
		}
		walk(e)
	}
	seeWhere := func(w *Where) {
		if w == nil {
			return
		}
		for _, c := range w.Conds {
			for _, v := range c.Vals {
				see(v)
			}
		}
	}
	switch st := stmt.(type) {
	case *Insert:
		for _, row := range st.Rows {
			for _, e := range row {
				see(e)
			}
		}
	case *Select:
		seeWhere(st.Where)
		if st.AsOf != nil {
			for _, e := range []Expr{st.AsOf.Exact, st.AsOf.MinTimestamp, st.AsOf.MaxStaleness} {
				if e != nil {
					see(e)
				}
			}
		}
	case *Update:
		for _, a := range st.Set {
			see(a.Val)
		}
		seeWhere(st.Where)
	case *Delete:
		seeWhere(st.Where)
	}
	return max
}

package sql

import (
	"fmt"
	"strings"

	"mrdb/internal/kv"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// VirtualSchema is the schema prefix of the read-only introspection tables,
// mrdb's analogue of crdb_internal. Virtual tables resolve in the planner
// like ordinary tables — SELECTs over them work from any session, with
// WHERE, projection and LIMIT — but are backed by in-memory cluster state
// rather than ranges, so reading them costs nothing in virtual time.
const VirtualSchema = "mrdb_internal"

// IsVirtualTable reports whether a (qualified) table name resolves in the
// virtual schema.
func IsVirtualTable(name string) bool {
	return strings.HasPrefix(name, VirtualSchema+".")
}

// execVirtualSelect evaluates a SELECT over a virtual table. It runs
// outside any transaction: the data is gateway-local cluster state, read at
// the instant of execution.
func (s *Session) execVirtualSelect(st *Select) (*Result, error) {
	if st.AsOf != nil {
		return nil, fmt.Errorf("sql: AS OF SYSTEM TIME is not supported on virtual tables")
	}
	name := strings.TrimPrefix(st.Table, VirtualSchema+".")
	cols, rows, err := s.virtualTableData(name)
	if err != nil {
		return nil, err
	}
	colIdx := map[string]int{}
	for i, c := range cols {
		colIdx[c] = i
	}
	// Filter: every conjunct must match; values are evaluated without a row
	// context (literals and session functions only).
	if st.Where != nil {
		var kept [][]Datum
		for _, row := range rows {
			match := true
			for _, cond := range st.Where.Conds {
				idx, ok := colIdx[cond.Col]
				if !ok {
					return nil, fmt.Errorf("sql: unknown column %q in %s.%s", cond.Col, VirtualSchema, name)
				}
				any := false
				for _, ve := range cond.Vals {
					v, err := s.evalExpr(ve, nil)
					if err != nil {
						return nil, err
					}
					if DatumsEqual(row[idx], v) {
						any = true
						break
					}
				}
				if !any {
					match = false
					break
				}
			}
			if match {
				kept = append(kept, row)
			}
		}
		rows = kept
	}
	// Projection.
	outCols := cols
	if st.Columns != nil {
		outCols = st.Columns
		var proj [][]Datum
		idxs := make([]int, len(st.Columns))
		for i, c := range st.Columns {
			idx, ok := colIdx[c]
			if !ok {
				return nil, fmt.Errorf("sql: unknown column %q in %s.%s", c, VirtualSchema, name)
			}
			idxs[i] = idx
		}
		for _, row := range rows {
			out := make([]Datum, len(idxs))
			for i, idx := range idxs {
				out[i] = row[idx]
			}
			proj = append(proj, out)
		}
		rows = proj
	}
	if st.Limit > 0 && len(rows) > st.Limit {
		rows = rows[:st.Limit]
	}
	return &Result{Columns: outCols, Rows: rows, RowsAffected: len(rows)}, nil
}

// virtualTableData materializes one virtual table. Row order is canonical
// (sorted keys or append order), so same-seed runs render identically.
func (s *Session) virtualTableData(name string) ([]string, [][]Datum, error) {
	c := s.Cluster
	switch name {
	case "statement_statistics":
		cols := []string{"fingerprint", "count", "errors", "retries", "wan_rpcs",
			"latency_p50", "latency_p99", "latency_max"}
		var rows [][]Datum
		for _, fp := range c.StmtStats.Fingerprints() {
			st := c.StmtStats.Get(fp)
			rows = append(rows, []Datum{
				fp, st.Count, st.Errors, st.Retries.Sum(), st.WANRPCs.Sum(),
				sim.Duration(st.Latency.Percentile(0.50)).String(),
				sim.Duration(st.Latency.Percentile(0.99)).String(),
				sim.Duration(st.Latency.Max()).String(),
			})
		}
		return cols, rows, nil

	case "contention_events":
		cols := []string{"ts", "node_id", "range_id", "key", "holder", "waiter",
			"duration", "is_write"}
		var rows [][]Datum
		for _, ev := range c.Contention.Events() {
			rows = append(rows, []Datum{
				ev.Start.String(), ev.NodeID, ev.RangeID,
				fmt.Sprintf("%q", ev.Key), ev.Holder, ev.Waiter,
				ev.Duration.String(), ev.IsWrite,
			})
		}
		return cols, rows, nil

	case "ranges":
		cols := []string{"range_id", "start_key", "end_key", "leaseholder",
			"lease_epoch", "lease_region", "policy", "voters", "non_voters",
			"qps", "decisions"}
		var rows [][]Datum
		for _, desc := range c.Catalog.All() {
			loc, _ := c.Topo.LocalityOf(desc.Leaseholder)
			qps := "0.0"
			if c.Admin.Load != nil {
				qps = fmt.Sprintf("%.1f", c.Admin.Load.QPS(desc.RangeID))
			}
			rows = append(rows, []Datum{
				int64(desc.RangeID),
				fmt.Sprintf("%q", desc.StartKey), fmt.Sprintf("%q", desc.EndKey),
				int64(desc.Leaseholder), s.leaseEpochOf(desc.Leaseholder, desc.RangeID),
				string(loc.Region), desc.Policy.String(),
				fmt.Sprintf("%v", desc.Voters), fmt.Sprintf("%v", desc.NonVoters),
				qps, c.Admin.Decisions(desc.RangeID).String(),
			})
		}
		return cols, rows, nil

	case "node_liveness":
		cols := []string{"node_id", "region", "zone", "epoch", "live"}
		var rows [][]Datum
		now := c.Sim.Now()
		for _, id := range c.Topo.Nodes() {
			loc, _ := c.Topo.LocalityOf(id)
			rows = append(rows, []Datum{
				int64(id), string(loc.Region), string(loc.Zone),
				c.Liveness.Epoch(id), c.Liveness.Live(id, now),
			})
		}
		return cols, rows, nil

	case "timeseries":
		// The virtual-time timeseries store: one row per (metric, node,
		// rollup bucket). Empty unless the cluster was built with
		// Config.Sampling. Row order is canonical (sorted metric, ascending
		// node, ascending bucket start), so same-seed output is
		// byte-identical.
		cols := []string{"metric", "node", "bucket_start", "count", "sum", "min", "max"}
		var rows [][]Datum
		for _, metric := range c.TSDB.Metrics() {
			for _, node := range c.TSDB.Nodes(metric) {
				for _, ba := range c.TSDB.Buckets(metric, node) {
					rows = append(rows, []Datum{
						metric, int64(node), ba.Start.String(),
						ba.Count, ba.Sum, ba.Min, ba.Max,
					})
				}
			}
		}
		return cols, rows, nil

	case "net_links":
		cols := []string{"from_region", "to_region", "rtt", "wan"}
		var rows [][]Datum
		regions := c.Topo.Regions()
		for _, a := range regions {
			for _, b := range regions {
				if b < a {
					continue
				}
				rows = append(rows, []Datum{
					string(a), string(b), c.Topo.RegionRTT(a, b).String(), a != b,
				})
			}
		}
		return cols, rows, nil
	}
	return nil, nil, fmt.Errorf("sql: virtual table %q does not exist in %s", name, VirtualSchema)
}

// leaseEpochOf reads the lease epoch the leaseholder replica published; 0
// when the store or replica is gone (e.g. mid-failover).
func (s *Session) leaseEpochOf(leaseholder simnet.NodeID, id kv.RangeID) int64 {
	st, ok := s.Cluster.Stores[leaseholder]
	if !ok {
		return 0
	}
	r, ok := st.Replica(id)
	if !ok {
		return 0
	}
	return r.LeaseEpoch()
}

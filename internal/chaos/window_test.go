package chaos

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// TestFaultWindowsSpikeAndReconverge pins the trajectory-shaped claim: the
// probe-latency timeseries must show tail latency spiking while a fault
// holds and dropping back under the RTO threshold after recovery. Seed 9's
// schedule fails us-east1 (the bank range's lease preference) twice, which
// reliably knocks probe p99 from ~90ms to several seconds until the lease
// fails over and back.
func TestFaultWindowsSpikeAndReconverge(t *testing.T) {
	rep, err := Run(Options{Seed: 9, Faults: 8})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	if want := len(rep.Events) / 2; len(rep.FaultWindows) != want {
		t.Fatalf("got %d fault windows for %d fault/heal pairs", len(rep.FaultWindows), want)
	}
	spiked := 0
	for _, fw := range rep.FaultWindows {
		if fw.Samples == 0 {
			t.Errorf("fault window %s saw no probe samples", fw.Fault)
		}
		if fw.Spiked {
			spiked++
			// No peak-vs-pre assertion: the 10s lookback can legitimately
			// overlap the previous fault's spike. Spiked is already defined
			// against the absolute RTO threshold.
			if !fw.Reconverged {
				t.Errorf("spiked window %s never re-converged (after-p99=%v)",
					fw.Fault, fw.AfterP99)
			}
		}
	}
	if spiked == 0 {
		t.Fatalf("no fault window spiked above the RTO threshold; the curve assertion is vacuous:\n%s", rep)
	}
	t.Logf("\n%s", rep)
}

// TestChaosExportDeterminism runs the same seed twice, exporting each run's
// observability state, and requires every artifact — OpenMetrics
// timeseries, registry dump, Jaeger traces — to be byte-identical. Virtual
// timestamps map onto a fixed epoch and all iteration is order-stable, so
// nothing about the files may depend on the host.
func TestChaosExportDeterminism(t *testing.T) {
	dirA, dirB := t.TempDir(), t.TempDir()
	run := func(dir string) {
		rep, err := Run(Options{Seed: 11, Faults: 5, ExportDir: dir})
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		if !rep.OK() {
			t.Fatalf("invariants violated:\n%s", rep)
		}
	}
	run(dirA)
	run(dirB)
	for _, name := range []string{"chaos_metrics.prom", "chaos_registry.prom", "chaos_traces.json"} {
		a, err := os.ReadFile(filepath.Join(dirA, name))
		if err != nil {
			t.Fatalf("first run did not write %s: %v", name, err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, name))
		if err != nil {
			t.Fatalf("second run did not write %s: %v", name, err)
		}
		if len(a) == 0 {
			t.Errorf("%s is empty", name)
		}
		if !bytes.Equal(a, b) {
			t.Errorf("%s differs between same-seed runs (%d vs %d bytes)", name, len(a), len(b))
		}
	}
	// The Jaeger export must carry the error convention: chaos runs always
	// produce failed RPC attempts, and those spans render red in the UI via
	// the boolean error tag.
	traces, _ := os.ReadFile(filepath.Join(dirA, "chaos_traces.json"))
	if !bytes.Contains(traces, []byte(`"key": "error"`)) {
		t.Error("trace export contains no error-tagged spans")
	}
}

package chaos

import (
	"testing"

	"mrdb/internal/sim"
)

// TestChaosDeterminism runs the same seed twice and requires the entire
// report — fault schedule, workload counts, invariant results — to be
// identical. This is the property that makes chaos failures debuggable:
// any run can be replayed exactly from its seed.
func TestChaosDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Options{Seed: 7, Faults: 8})
		if err != nil {
			t.Fatalf("chaos run failed: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Schedule() != b.Schedule() {
		t.Fatalf("fault schedules differ for same seed:\n--- run 1:\n%s--- run 2:\n%s",
			a.Schedule(), b.Schedule())
	}
	if a.String() != b.String() {
		t.Fatalf("reports differ for same seed:\n--- run 1:\n%s--- run 2:\n%s", a, b)
	}
	if !a.OK() {
		t.Fatalf("invariants violated:\n%s", a)
	}
	t.Logf("\n%s", a)
}

// TestChaosSmoke injects 100+ nemesis events against the bank and
// linearizability workloads and requires every invariant to hold, and every
// measured recovery to finish within the RTO bound.
func TestChaosSmoke(t *testing.T) {
	rep, err := Run(Options{Seed: 42, Faults: 55})
	if err != nil {
		t.Fatalf("chaos run failed: %v", err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Events) < 100 {
		t.Fatalf("only %d events injected, want >= 100", len(rep.Events))
	}
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
	if rep.RegionFailures == 0 {
		t.Fatal("schedule contained no region failures; widen the fault mix")
	}
	if rep.TransfersOK == 0 || rep.LinReads == 0 || rep.BankAudits == 0 {
		t.Fatalf("workloads made no progress:\n%s", rep)
	}
	if max := rep.MaxRTO(); max > 15*sim.Second {
		t.Fatalf("recovery took %v, want <= 15s:\n%s", max, rep)
	}
	if rep.LeaseAcquisitions == 0 {
		t.Fatal("no failover lease acquisitions despite region failures")
	}
}

// TestElasticPlacementInvariants is the rebalancer-invariants check: a
// nemesis-free run where the load queue chases hot single-region traffic
// (splits + a lease move) while a migrator relocates the bank range's
// replicas back and forth under live transfer traffic. The placement
// monitor samples every configured range each virtual second and must never
// observe a placement below its zone config's constraints — replica counts
// and region survivability hold at every instant of every migration.
func TestElasticPlacementInvariants(t *testing.T) {
	rep, err := Run(Options{Seed: 23, Elastic: true, Faults: 0})
	if err != nil {
		t.Fatalf("elastic chaos run failed: %v", err)
	}
	t.Logf("\n%s", rep)
	if len(rep.Events) != 0 {
		t.Fatalf("nemesis-free run injected %d events", len(rep.Events))
	}
	if rep.PlacementChecks == 0 {
		t.Fatal("placement monitor never sampled")
	}
	if rep.PlacementViolations != 0 {
		t.Fatalf("placement violated %d times (first: %s)",
			rep.PlacementViolations, rep.PlacementFirstBad)
	}
	if rep.Relocations < 2 {
		t.Fatalf("only %d migrations completed, want >= 2", rep.Relocations)
	}
	if rep.LoadSplits == 0 {
		t.Fatal("hot elastic traffic produced no load-based splits")
	}
	if rep.LeaseMoves == 0 {
		t.Fatal("single-region traffic never attracted the lease")
	}
	if !rep.OK() {
		t.Fatalf("invariants violated:\n%s", rep)
	}
}

// TestElasticDeterminism replays the elastic run and requires bit-identical
// reports: the load queue's decisions and the migrator's schedule are all
// driven by the virtual clock and the seeded RNG.
func TestElasticDeterminism(t *testing.T) {
	run := func() *Report {
		rep, err := Run(Options{Seed: 29, Elastic: true, Faults: 0, ElasticRun: 60 * sim.Second})
		if err != nil {
			t.Fatalf("elastic chaos run failed: %v", err)
		}
		return rep
	}
	a, b := run(), run()
	if a.String() != b.String() {
		t.Fatalf("elastic reports differ for same seed:\n--- run 1:\n%s--- run 2:\n%s", a, b)
	}
	if !a.OK() {
		t.Fatalf("invariants violated:\n%s", a)
	}
}

// TestSeedsDiffer sanity-checks that different seeds actually produce
// different schedules (the RNG is being consulted, not a fixed script).
func TestSeedsDiffer(t *testing.T) {
	a, err := Run(Options{Seed: 1, Faults: 6})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(Options{Seed: 2, Faults: 6})
	if err != nil {
		t.Fatal(err)
	}
	if a.Schedule() == b.Schedule() {
		t.Fatal("seeds 1 and 2 produced identical schedules")
	}
}

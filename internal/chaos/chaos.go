// Package chaos implements a deterministic nemesis harness in the spirit of
// Jepsen: randomized faults (node crashes, region failures, symmetric and
// one-way partitions, slow links) are injected into a running cluster from
// the simulation's seeded RNG while concurrent workloads check invariants —
// bank-sum conservation, single-key linearizability, closed-timestamp
// monotonicity — and a prober measures virtual-time recovery (RTO).
//
// Because every source of randomness is the simulation RNG and all state
// iteration is order-stable, a fixed seed reproduces the exact same fault
// schedule and invariant results on every run.
package chaos

import (
	"fmt"
	"strings"

	"mrdb/internal/cluster"
	"mrdb/internal/hlc"
	"mrdb/internal/kv"
	"mrdb/internal/mvcc"
	"mrdb/internal/obs/export"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/txn"
	"mrdb/internal/zones"
)

// Options parameterizes a chaos run. Zero values take defaults.
type Options struct {
	Seed   int64
	Faults int // fault/heal pairs to inject (2*Faults events total)

	// MeanHold/MeanPause shape the schedule: each fault holds for a
	// uniform duration in [Mean/2, 3*Mean/2], with a similar pause between
	// faults. One fault is active at a time, so quorum is never lost on a
	// REGION-survivable range.
	MeanHold  sim.Duration
	MeanPause sim.Duration

	Accounts       int
	InitialBalance int
	Movers         int

	// Settle is quiet time after the last heal before final audits.
	Settle sim.Duration
	// RTOThreshold classifies a probe as an outage: any successful probe
	// whose end-to-end latency exceeds it records a recovery interval.
	RTOThreshold sim.Duration
	// Metrics dumps the full metrics registry into the report, making it
	// part of the -verify determinism comparison.
	Metrics bool
	// CrashesOnly restricts the nemesis to crash/restart pairs, exercising
	// the restart-from-disk path on every single fault.
	CrashesOnly bool
	// ExportDir, when non-empty, writes the run's observability state after
	// the run finishes: chaos_metrics.prom (OpenMetrics timeseries),
	// chaos_registry.prom (point-in-time dump) and chaos_traces.json
	// (Jaeger UI upload format). Same seed, same bytes.
	ExportDir string
	// Elastic enables the load-based allocator and the elastic workloads:
	// a hot single-region range that must attract load splits and a lease
	// move, plus a migrator that relocates the bank range back and forth so
	// the placement checker observes live replica migrations. With Elastic
	// set, Faults: 0 really means a nemesis-free run (no default kicks in).
	Elastic bool
	// ElasticRun is how long the elastic workloads run after the nemesis
	// finishes (default 90s; only meaningful with Elastic).
	ElasticRun sim.Duration
	// Verbose prints events as they are injected.
	Verbose bool
}

func (o Options) withDefaults() Options {
	if o.Faults == 0 && !o.Elastic {
		o.Faults = 10
	}
	if o.ElasticRun == 0 {
		o.ElasticRun = 90 * sim.Second
	}
	if o.MeanHold == 0 {
		o.MeanHold = 4 * sim.Second
	}
	if o.MeanPause == 0 {
		o.MeanPause = 6 * sim.Second
	}
	if o.Accounts == 0 {
		o.Accounts = 8
	}
	if o.InitialBalance == 0 {
		o.InitialBalance = 100
	}
	if o.Movers == 0 {
		o.Movers = 3
	}
	if o.Settle == 0 {
		o.Settle = 15 * sim.Second
	}
	if o.RTOThreshold == 0 {
		o.RTOThreshold = 1500 * sim.Millisecond
	}
	return o
}

// EventKind enumerates nemesis actions.
type EventKind int8

// Nemesis event kinds: each fault kind has a matching heal.
const (
	EvCrashNode EventKind = iota
	EvRestartNode
	EvFailRegion
	EvRecoverRegion
	EvPartitionPair
	EvHealPair
	EvPartitionOneWay
	EvHealOneWay
	EvSlowLink
	EvHealLink
)

func (k EventKind) String() string {
	switch k {
	case EvCrashNode:
		return "crash"
	case EvRestartNode:
		return "restart"
	case EvFailRegion:
		return "fail-region"
	case EvRecoverRegion:
		return "recover-region"
	case EvPartitionPair:
		return "partition"
	case EvHealPair:
		return "heal-partition"
	case EvPartitionOneWay:
		return "partition-oneway"
	case EvHealOneWay:
		return "heal-oneway"
	case EvSlowLink:
		return "slow-link"
	case EvHealLink:
		return "heal-link"
	}
	return "unknown"
}

// Event is one nemesis action at a virtual time.
type Event struct {
	At     sim.Time
	Kind   EventKind
	A, B   simnet.NodeID
	Region simnet.Region
	Extra  sim.Duration // slow-link latency
}

func (e Event) String() string {
	switch e.Kind {
	case EvFailRegion, EvRecoverRegion:
		return fmt.Sprintf("t=%v %s %s", e.At, e.Kind, e.Region)
	case EvCrashNode, EvRestartNode:
		return fmt.Sprintf("t=%v %s n%d", e.At, e.Kind, e.A)
	case EvSlowLink:
		return fmt.Sprintf("t=%v %s n%d→n%d +%v", e.At, e.Kind, e.A, e.B, e.Extra)
	case EvPartitionOneWay, EvHealOneWay:
		return fmt.Sprintf("t=%v %s n%d→n%d", e.At, e.Kind, e.A, e.B)
	default:
		return fmt.Sprintf("t=%v %s n%d↔n%d", e.At, e.Kind, e.A, e.B)
	}
}

// linRead is one observed read of the linearizability register.
type linRead struct {
	start, end sim.Time
	val        int
}

// harness carries the run's shared state.
type harness struct {
	opts    Options
	c       *cluster.Cluster
	rep     *Report
	stopped bool

	// activeFault tracks the currently held fault so the prober and other
	// helpers can pick gateways outside the blast radius.
	activeKind   EventKind
	activeRegion simnet.Region
	activeNode   simnet.NodeID

	linReads  []linRead
	linWrites int

	// bankRange is the bank range's ID; the elastic migrator relocates it
	// back and forth so the placement checker sees live migrations.
	bankRange kv.RangeID

	// closedLast holds the closed-timestamp monitor's per-replica high-water
	// baselines. Crashing a node deletes its entries: the recovered replica
	// restarts from its last checkpoint, legitimately below the pre-crash
	// value, and monotonicity is per process incarnation.
	closedLast map[string]hlc.Timestamp
}

// Run executes a chaos schedule and returns the report. The error is only
// non-nil for setup failures; invariant violations are reported in Report.
func Run(opts Options) (*Report, error) {
	opts = opts.withDefaults()
	c := cluster.New(cluster.Config{
		Seed:      opts.Seed,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
		// Tracing is passive over virtual time, so it cannot perturb the
		// fault schedule; the span-tree hash doubles as a determinism check.
		Tracing: true,
		// Crashes are honest: a crashed node loses its volatile state and
		// restarts from its simulated disk (WAL + checkpoints).
		Durability: true,
		// Sampling feeds the virtual-time timeseries store; like tracing it is
		// read-only over the schedule, so the fault timeline is unchanged.
		// 2s rollup buckets resolve individual fault windows (mean hold 4s).
		Sampling:       true,
		SampleInterval: 1 * sim.Second,
		SampleBucket:   2 * sim.Second,
		// Elastic runs add the load-based split/merge/rebalance queue, tuned
		// hot enough that the chaos-scale traffic actually triggers it.
		LoadBased: opts.Elastic,
		Load: kv.LoadConfig{
			Interval: 5 * sim.Second, HalfLife: 10 * sim.Second,
			SplitQPS: 30, MergeQPS: 2, MergeTicks: 2,
		},
	})
	h := &harness{
		opts:       opts,
		c:          c,
		activeKind: -1,
		closedLast: map[string]hlc.Timestamp{},
		rep: &Report{
			Seed:         opts.Seed,
			BankExpected: opts.Accounts * opts.InitialBalance,
		},
	}

	// Bank range: REGION-survivable, 5 voters spread 2/2/1 so any single
	// region failure keeps quorum.
	bankCfg := zones.Config{
		NumReplicas: 5, NumVoters: 5,
		VoterConstraints: map[simnet.Region]int{
			simnet.USEast1: 2, simnet.EuropeW2: 2, simnet.AsiaNE1: 1,
		},
		LeasePreferences: []simnet.Region{simnet.USEast1},
	}
	bankDesc, err := c.CreateRangeWithZoneConfig([]byte("acct/"), []byte("acct0"), bankCfg, kv.ClosedTSLag)
	if err != nil {
		return nil, err
	}
	h.bankRange = bankDesc.RangeID
	// Linearizability register: same survivability, home in Europe so the
	// two ranges fail over in different fault scenarios.
	linCfg := zones.Config{
		NumReplicas: 5, NumVoters: 5,
		VoterConstraints: map[simnet.Region]int{
			simnet.EuropeW2: 2, simnet.AsiaNE1: 2, simnet.USEast1: 1,
		},
		LeasePreferences: []simnet.Region{simnet.EuropeW2},
	}
	if _, err := c.CreateRangeWithZoneConfig([]byte("lin/"), []byte("lin0"), linCfg, kv.ClosedTSLag); err != nil {
		return nil, err
	}
	if opts.Elastic {
		// Elastic range: one voter per region, NO lease preferences, so the
		// load queue is free to chase its traffic with the lease.
		elasCfg := zones.Config{
			NumReplicas: 3, NumVoters: 3,
			VoterConstraints: map[simnet.Region]int{
				simnet.USEast1: 1, simnet.EuropeW2: 1, simnet.AsiaNE1: 1,
			},
		}
		if _, err := c.CreateRangeWithZoneConfig([]byte("elas/"), []byte("elas0"), elasCfg, kv.ClosedTSLag); err != nil {
			return nil, err
		}
	}

	var setupErr error
	c.Sim.Spawn("chaos", func(p *sim.Proc) {
		defer c.Sim.Stop()
		setupErr = h.run(p)
	})
	// Generous virtual budget; the orchestrator stops the sim when done.
	budget := sim.Duration(opts.Faults+2)*(opts.MeanHold+opts.MeanPause)*2 + 5*sim.Minute
	c.Sim.RunFor(budget)
	h.rep.Elapsed = sim.Duration(c.Sim.Now())
	h.rep.LeaseAcquisitions = h.leaseAcquisitions()
	h.rep.EpochBumps = c.Liveness.EpochBumps
	h.rep.SpanHash = c.Tracer.Hash()
	h.rep.LoadSplits = c.Admin.LoadSplits
	h.rep.LoadMerges = c.Admin.Merges
	h.rep.LeaseMoves = c.Admin.LeaseMoves
	h.rep.ReplicaMoves = c.Admin.ReplicaMoves
	if h.rep.Restarts > 0 {
		h.rep.RestartRecovery = c.Metrics.Histogram("recovery.duration").Summary()
	}
	for _, name := range c.Metrics.Histograms() {
		if strings.HasPrefix(name, "chaos.rto.") {
			h.rep.RTOByFault = append(h.rep.RTOByFault,
				fmt.Sprintf("%s %s", strings.TrimPrefix(name, "chaos.rto."), c.Metrics.Histogram(name).Summary()))
		}
	}
	if opts.Metrics {
		h.rep.MetricsDump = c.Metrics.String()
	}
	h.rep.FaultWindows = h.faultWindows()
	h.checkLinearizability()
	if setupErr == nil && opts.ExportDir != "" {
		setupErr = export.WriteDir(opts.ExportDir, "chaos_", c.TSDB, c.Metrics, c.Tracer.Traces())
	}
	return h.rep, setupErr
}

// faultWindows derives one per-fault latency trajectory from the merged
// chaos.probe.latency timeseries: the tail (per-bucket max ≈ p99 at probe
// cadence) before the fault, its peak while the fault held (plus a short
// grace for the heal to take), and after recovery. A window "spikes" when
// its peak crosses the RTO threshold and "re-converges" when the
// post-recovery tail drops back under it — the trajectory-shaped claim the
// paper makes for fault tolerance, asserted on the curve itself.
func (h *harness) faultWindows() []FaultWindow {
	buckets := h.c.TSDB.Merged("chaos.probe.latency")
	if len(buckets) == 0 {
		return nil
	}
	const (
		grace    = 3 * sim.Second  // heal propagation before "after" starts
		preSpan  = 10 * sim.Second // baseline lookback
		postSpan = 12 * sim.Second // re-convergence observation span
	)
	tailIn := func(from, to sim.Time) (sim.Duration, int64) {
		var peak, n int64
		for _, ba := range buckets {
			if ba.Start >= from && ba.Start < to {
				n += ba.Count
				if ba.Max > peak {
					peak = ba.Max
				}
			}
		}
		return sim.Duration(peak), n
	}
	evs := h.rep.Events
	var out []FaultWindow
	for i := 0; i+1 < len(evs); i += 2 {
		fault, heal := evs[i], evs[i+1]
		afterStart := heal.At.Add(grace)
		afterEnd := afterStart.Add(postSpan)
		if i+2 < len(evs) && evs[i+2].At < afterEnd {
			afterEnd = evs[i+2].At
		}
		fw := FaultWindow{Fault: fault, Healed: heal.At}
		fw.PreP99, _ = tailIn(fault.At.Add(-preSpan), fault.At)
		fw.PeakP99, fw.Samples = tailIn(fault.At, afterStart)
		var afterN int64
		fw.AfterP99, afterN = tailIn(afterStart, afterEnd)
		fw.Spiked = fw.PeakP99 >= h.opts.RTOThreshold
		fw.Reconverged = !fw.Spiked || (afterN > 0 && fw.AfterP99 < h.opts.RTOThreshold)
		out = append(out, fw)
	}
	return out
}

// acctKey returns the i-th bank account key.
func acctKey(i int) mvcc.Key { return mvcc.Key(fmt.Sprintf("acct/%03d", i)) }

// linKey is the single linearizability register.
var linKey = mvcc.Key("lin/x")

// healthyGateway picks the lowest-ID live node outside the active fault's
// blast radius; iteration over sorted node IDs keeps it deterministic.
func (h *harness) healthyGateway(now sim.Time) simnet.NodeID {
	for _, id := range h.c.Topo.Nodes() {
		if h.c.Net.NodeDown(id) {
			continue
		}
		if h.activeKind == EvFailRegion {
			if loc, ok := h.c.Topo.LocalityOf(id); ok && loc.Region == h.activeRegion {
				continue
			}
		}
		if !h.c.Liveness.Live(id, now) {
			continue
		}
		return id
	}
	return h.c.Topo.Nodes()[0]
}

func (h *harness) coordAt(gw simnet.NodeID) *txn.Coordinator {
	return txn.NewCoordinator(h.c.Stores[gw], h.c.Senders[gw])
}

func (h *harness) run(p *sim.Proc) error {
	c, opts, rep := h.c, h.opts, h.rep
	if err := c.Admin.WaitAllReady(p); err != nil {
		return err
	}
	p.Sleep(1 * sim.Second)

	// Seed the bank.
	seedCo := h.coordAt(c.GatewayFor(simnet.USEast1))
	if err := seedCo.Run(p, func(tx *txn.Txn) error {
		var kvs []mvcc.KeyValue
		for i := 0; i < opts.Accounts; i++ {
			kvs = append(kvs, mvcc.KeyValue{Key: acctKey(i), Value: mvcc.Value(fmt.Sprintf("%d", opts.InitialBalance))})
		}
		return tx.PutParallel(p, kvs)
	}); err != nil {
		return fmt.Errorf("chaos: bank seed: %w", err)
	}
	if err := seedCo.Run(p, func(tx *txn.Txn) error {
		return tx.Put(p, linKey, mvcc.Value("0"))
	}); err != nil {
		return fmt.Errorf("chaos: lin seed: %w", err)
	}

	wg := sim.NewWaitGroup(c.Sim)
	h.spawnMovers(wg)
	h.spawnLinWriter(wg)
	h.spawnLinReaders(wg)
	h.spawnProber(wg)
	h.spawnAuditor(wg)
	stopMon := h.startClosedTSMonitor()
	stopPlacement := h.startPlacementMonitor()
	if opts.Elastic {
		h.spawnElasticWriters(wg)
		h.spawnMigrator(wg)
	}

	h.nemesis(p)
	if opts.Elastic {
		// Keep the elastic workloads (and the placement checker watching
		// their migrations) running past the nemesis window.
		p.Sleep(opts.ElasticRun)
	}

	p.Sleep(opts.Settle)
	h.stopped = true
	wg.Wait(p)
	stopMon()
	stopPlacement()

	// Final audit from a fresh coordinator; everything is healed, so this
	// must succeed (with a little patience for stragglers).
	var finalErr error
	for i := 0; i < 5; i++ {
		total := 0
		finalErr = h.coordAt(h.healthyGateway(p.Now())).Run(p, func(tx *txn.Txn) error {
			total = 0
			for a := 0; a < opts.Accounts; a++ {
				v, err := tx.Get(p, acctKey(a))
				if err != nil {
					return err
				}
				n := 0
				fmt.Sscanf(string(v), "%d", &n)
				total += n
			}
			return nil
		})
		if finalErr == nil {
			rep.BankFinal = total
			rep.FinalAuditOK = total == rep.BankExpected
			break
		}
		p.Sleep(2 * sim.Second)
	}
	if finalErr != nil {
		return fmt.Errorf("chaos: final audit: %w", finalErr)
	}
	rep.LinWrites = h.linWrites
	return nil
}

// --- Nemesis ---

// uniformAround returns a uniform duration in [mean/2, 3*mean/2].
func uniformAround(rng interface{ Int63n(int64) int64 }, mean sim.Duration) sim.Duration {
	half := int64(mean) / 2
	return sim.Duration(half + rng.Int63n(2*half+1))
}

// nemesis injects opts.Faults sequential fault/heal pairs.
func (h *harness) nemesis(p *sim.Proc) {
	c, opts := h.c, h.opts
	rng := p.Rand()
	nodes := c.Topo.Nodes()
	regions := c.Regions()
	for i := 0; i < opts.Faults; i++ {
		p.Sleep(uniformAround(rng, opts.MeanPause))
		var fault, heal Event
		pick := rng.Intn(5)
		if opts.CrashesOnly {
			pick = 0
		}
		switch pick {
		case 0:
			n := nodes[rng.Intn(len(nodes))]
			fault = Event{Kind: EvCrashNode, A: n}
			heal = Event{Kind: EvRestartNode, A: n}
		case 1:
			r := regions[rng.Intn(len(regions))]
			fault = Event{Kind: EvFailRegion, Region: r}
			heal = Event{Kind: EvRecoverRegion, Region: r}
		case 2:
			a, b := h.pickPair(rng, nodes)
			fault = Event{Kind: EvPartitionPair, A: a, B: b}
			heal = Event{Kind: EvHealPair, A: a, B: b}
		case 3:
			a, b := h.pickPair(rng, nodes)
			fault = Event{Kind: EvPartitionOneWay, A: a, B: b}
			heal = Event{Kind: EvHealOneWay, A: a, B: b}
		case 4:
			a, b := h.pickPair(rng, nodes)
			extra := 50*sim.Millisecond + sim.Duration(rng.Int63n(int64(450*sim.Millisecond)))
			fault = Event{Kind: EvSlowLink, A: a, B: b, Extra: extra}
			heal = Event{Kind: EvHealLink, A: a, B: b}
		}
		h.apply(p, fault)
		p.Sleep(uniformAround(rng, opts.MeanHold))
		h.apply(p, heal)
	}
}

func (h *harness) pickPair(rng interface{ Intn(int) int }, nodes []simnet.NodeID) (simnet.NodeID, simnet.NodeID) {
	a := nodes[rng.Intn(len(nodes))]
	b := nodes[rng.Intn(len(nodes))]
	for b == a {
		b = nodes[rng.Intn(len(nodes))]
	}
	return a, b
}

// apply executes an event against the network and records it.
func (h *harness) apply(p *sim.Proc, e Event) {
	e.At = p.Now()
	switch e.Kind {
	case EvCrashNode:
		h.c.CrashNode(e.A)
		// The node's replicas are reborn from their checkpoints, which may
		// trail the pre-crash closed timestamps; re-baseline the monitor.
		for _, d := range h.c.Catalog.All() {
			delete(h.closedLast, fmt.Sprintf("n%d/r%d", e.A, d.RangeID))
		}
		h.activeKind, h.activeNode = e.Kind, e.A
	case EvRestartNode:
		stats, err := h.c.RestartNode(p, e.A)
		if err != nil {
			// Unrecoverable disk state is a harness invariant violation,
			// not a tolerated fault; report it loudly.
			h.rep.RecoveryFailures++
		} else {
			h.rep.Restarts++
			h.rep.RecoveryTimes = append(h.rep.RecoveryTimes, stats.Duration)
		}
		h.activeKind = -1
	case EvFailRegion:
		h.c.Net.FailRegion(e.Region)
		h.activeKind, h.activeRegion = e.Kind, e.Region
		h.rep.RegionFailures++
	case EvRecoverRegion:
		h.c.Net.RecoverRegion(e.Region)
		h.activeKind = -1
	case EvPartitionPair:
		h.c.Net.Partition(e.A, e.B)
		h.activeKind = e.Kind
	case EvHealPair:
		h.c.Net.Heal(e.A, e.B)
		h.activeKind = -1
	case EvPartitionOneWay:
		h.c.Net.PartitionOneWay(e.A, e.B)
		h.activeKind = e.Kind
	case EvHealOneWay:
		h.c.Net.HealOneWay(e.A, e.B)
		h.activeKind = -1
	case EvSlowLink:
		h.c.Net.SlowLink(e.A, e.B, e.Extra)
		h.activeKind = e.Kind
	case EvHealLink:
		h.c.Net.HealLink(e.A, e.B)
		h.activeKind = -1
	}
	h.rep.Events = append(h.rep.Events, e)
	if h.opts.Verbose {
		fmt.Println("  " + e.String())
	}
}

// --- Workloads ---

// spawnMovers starts bank-transfer workers, one per region round-robin.
// Transfer errors are tolerated (the nemesis guarantees unavailability
// windows); the invariant is that the money supply never changes.
func (h *harness) spawnMovers(wg *sim.WaitGroup) {
	regions := h.c.Regions()
	for m := 0; m < h.opts.Movers; m++ {
		m := m
		region := regions[m%len(regions)]
		wg.Add(1)
		h.c.Sim.Spawn(fmt.Sprintf("chaos/mover%d", m), func(p *sim.Proc) {
			defer wg.Done()
			gw := h.c.GatewayFor(region)
			co := h.coordAt(gw)
			rng := p.Rand()
			for !h.stopped {
				from := rng.Intn(h.opts.Accounts)
				to := rng.Intn(h.opts.Accounts)
				if from == to {
					p.Sleep(50 * sim.Millisecond)
					continue
				}
				if from > to {
					// Ordered locking avoids deadlock aborts by
					// construction; the deadlock detector is exercised
					// plenty by the rest of the suite.
					from, to = to, from
				}
				amount := 1 + rng.Intn(5)
				err := co.Run(p, func(tx *txn.Txn) error {
					av, err := tx.GetForUpdate(p, acctKey(from))
					if err != nil {
						return err
					}
					bv, err := tx.GetForUpdate(p, acctKey(to))
					if err != nil {
						return err
					}
					a, b := 0, 0
					fmt.Sscanf(string(av), "%d", &a)
					fmt.Sscanf(string(bv), "%d", &b)
					if a < amount {
						return nil
					}
					if err := tx.Put(p, acctKey(from), mvcc.Value(fmt.Sprintf("%d", a-amount))); err != nil {
						return err
					}
					return tx.Put(p, acctKey(to), mvcc.Value(fmt.Sprintf("%d", b+amount)))
				})
				if err != nil {
					h.rep.TransfersFailed++
					p.Sleep(500 * sim.Millisecond)
				} else {
					h.rep.TransfersOK++
					p.Sleep(200 * sim.Millisecond)
				}
			}
		})
	}
}

// spawnLinWriter starts the single writer of the linearizability register:
// it writes strictly increasing values, only advancing after a confirmed
// commit. An ambiguous failure (commit may or may not have applied) retries
// the same value, which is idempotent for monotonicity.
func (h *harness) spawnLinWriter(wg *sim.WaitGroup) {
	wg.Add(1)
	h.c.Sim.Spawn("chaos/lin-writer", func(p *sim.Proc) {
		defer wg.Done()
		next := 1
		for !h.stopped {
			co := h.coordAt(h.healthyGateway(p.Now()))
			err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, linKey, mvcc.Value(fmt.Sprintf("%d", next)))
			})
			if err == nil {
				h.linWrites++
				next++
				p.Sleep(300 * sim.Millisecond)
			} else {
				p.Sleep(500 * sim.Millisecond)
			}
		}
	})
}

// spawnLinReaders starts one consistent reader per region recording
// (start, end, value) windows for the linearizability check.
func (h *harness) spawnLinReaders(wg *sim.WaitGroup) {
	for i, region := range h.c.Regions() {
		region := region
		wg.Add(1)
		h.c.Sim.Spawn(fmt.Sprintf("chaos/lin-reader%d", i), func(p *sim.Proc) {
			defer wg.Done()
			gw := h.c.GatewayFor(region)
			co := h.coordAt(gw)
			for !h.stopped {
				start := p.Now()
				var raw mvcc.Value
				err := co.Run(p, func(tx *txn.Txn) error {
					v, err := tx.Get(p, linKey)
					raw = v
					return err
				})
				if err == nil {
					val := 0
					fmt.Sscanf(string(raw), "%d", &val)
					h.linReads = append(h.linReads, linRead{start: start, end: p.Now(), val: val})
				}
				p.Sleep(400 * sim.Millisecond)
			}
		})
	}
}

// spawnProber measures availability and recovery time: a periodic write
// through a gateway outside the fault's blast radius. Probe latency above
// RTOThreshold records a recovery interval (the DistSender rides out the
// outage internally, so the first slow probe's latency IS the RTO).
func (h *harness) spawnProber(wg *sim.WaitGroup) {
	wg.Add(1)
	h.c.Sim.Spawn("chaos/prober", func(p *sim.Proc) {
		defer wg.Done()
		seq := 0
		for !h.stopped {
			gw := h.healthyGateway(p.Now())
			co := h.coordAt(gw)
			start := p.Now()
			seq++
			// The fault blamed for a slow probe is the one active when the
			// probe started; by completion it may already have healed.
			kind := "none"
			if h.activeKind >= 0 {
				kind = h.activeKind.String()
			}
			sp, probeDone := h.c.Tracer.StartRootIn(p, "chaos.probe")
			sp.SetTagInt("gateway", int64(gw)).SetTagInt("seq", int64(seq)).SetTag("fault", kind)
			err := co.Run(p, func(tx *txn.Txn) error {
				return tx.Put(p, mvcc.Key("acct/probe"), mvcc.Value(fmt.Sprintf("%d", seq)))
			})
			lat := p.Now().Sub(start)
			if err != nil {
				sp.SetError(err)
			}
			probeDone()
			// Bucket by completion time: a probe that rode out an outage
			// lands its latency in the fault window, not before it.
			h.c.TSDB.Observe("chaos.probe.latency", int(gw), p.Now(), int64(lat))
			if err != nil {
				h.rep.ProbesFailed++
				h.rep.Recoveries = append(h.rep.Recoveries, lat)
				h.recordRTO(kind, lat)
				if h.opts.Verbose {
					fmt.Printf("  t=%v probe via n%d FAILED after %v: %v\n", p.Now(), gw, lat, err)
				}
			} else {
				h.rep.ProbesOK++
				if lat > h.opts.RTOThreshold {
					h.rep.Recoveries = append(h.rep.Recoveries, lat)
					h.recordRTO(kind, lat)
					if h.opts.Verbose {
						fmt.Printf("  t=%v probe via n%d recovered after %v\n", p.Now(), gw, lat)
					}
				}
			}
			p.Sleep(500 * sim.Millisecond)
		}
	})
}

// recordRTO files one recovery interval under the blamed fault kind and the
// all-faults aggregate.
func (h *harness) recordRTO(kind string, lat sim.Duration) {
	h.c.Metrics.Histogram("chaos.rto." + kind).RecordDuration(lat)
	h.c.Metrics.Histogram("chaos.rto.all").RecordDuration(lat)
}

// spawnAuditor runs periodic bank-sum audits during the chaos; failed reads
// are tolerated, wrong sums are invariant violations.
func (h *harness) spawnAuditor(wg *sim.WaitGroup) {
	wg.Add(1)
	h.c.Sim.Spawn("chaos/auditor", func(p *sim.Proc) {
		defer wg.Done()
		for !h.stopped {
			co := h.coordAt(h.healthyGateway(p.Now()))
			total := 0
			err := co.Run(p, func(tx *txn.Txn) error {
				total = 0
				for a := 0; a < h.opts.Accounts; a++ {
					v, err := tx.Get(p, acctKey(a))
					if err != nil {
						return err
					}
					n := 0
					fmt.Sscanf(string(v), "%d", &n)
					total += n
				}
				return nil
			})
			if err == nil {
				h.rep.BankAudits++
				if total != h.rep.BankExpected {
					h.rep.BankAuditBad++
				}
			}
			p.Sleep(2 * sim.Second)
		}
	})
}

// startClosedTSMonitor samples every replica's closed timestamp and counts
// regressions (closed timestamps must be monotonic per replica).
func (h *harness) startClosedTSMonitor() (stop func()) {
	last := h.closedLast
	return h.c.Sim.Ticker(1*sim.Second, func() {
		for _, id := range h.c.Topo.Nodes() {
			st := h.c.Stores[id]
			for _, d := range h.c.Catalog.All() {
				r, ok := st.Replica(d.RangeID)
				if !ok {
					continue
				}
				key := fmt.Sprintf("n%d/r%d", id, d.RangeID)
				ts := r.ClosedTimestamp()
				h.rep.ClosedTSSamples++
				if ts.Less(last[key]) {
					h.rep.ClosedTSRegressions++
				}
				last[key] = ts
			}
		}
	})
}

// startPlacementMonitor samples every range with a registered zone config
// and validates its placement with the mid-migration relaxation: replica
// counts and region constraints must hold at every instant, including while
// a relocation is adding and removing replicas.
func (h *harness) startPlacementMonitor() (stop func()) {
	checker := &zones.Allocator{Topo: h.c.Topo}
	return h.c.Sim.Ticker(1*sim.Second, func() {
		for _, d := range h.c.Catalog.All() {
			cfg, ok := h.c.Catalog.ZoneConfig(d.RangeID)
			if !ok {
				continue
			}
			pl := zones.Placement{
				Voters:      d.Voters,
				NonVoters:   d.NonVoters,
				Leaseholder: d.Leaseholder,
			}
			h.rep.PlacementChecks++
			if err := checker.CheckPlacementDuring(cfg, pl); err != nil {
				h.rep.PlacementViolations++
				if h.rep.PlacementFirstBad == "" {
					h.rep.PlacementFirstBad = fmt.Sprintf("t=%v r%d: %v", h.c.Sim.Now(), d.RangeID, err)
				}
			}
		}
	})
}

// spawnElasticWriters drives hot single-region traffic at the elastic
// range: every operation comes from Europe, so the load queue must split
// the range under load and move its lease toward the traffic.
func (h *harness) spawnElasticWriters(wg *sim.WaitGroup) {
	for w := 0; w < 2; w++ {
		w := w
		wg.Add(1)
		h.c.Sim.Spawn(fmt.Sprintf("chaos/elastic%d", w), func(p *sim.Proc) {
			defer wg.Done()
			gw := h.c.GatewayFor(simnet.EuropeW2)
			co := h.coordAt(gw)
			rng := p.Rand()
			for !h.stopped {
				key := mvcc.Key(fmt.Sprintf("elas/%03d", rng.Intn(60)))
				err := co.Run(p, func(tx *txn.Txn) error {
					return tx.Put(p, key, mvcc.Value(fmt.Sprintf("%d", rng.Intn(1000))))
				})
				if err != nil {
					p.Sleep(200 * sim.Millisecond)
				} else {
					p.Sleep(20 * sim.Millisecond)
				}
			}
		})
	}
}

// spawnMigrator relocates the bank range back and forth between two
// placements that both satisfy its zone config (swapping which Europe nodes
// hold its two Europe voters), so replicas migrate while the movers keep
// transferring money and the placement monitor watches every intermediate
// state.
func (h *harness) spawnMigrator(wg *sim.WaitGroup) {
	wg.Add(1)
	h.c.Sim.Spawn("chaos/migrator", func(p *sim.Proc) {
		defer wg.Done()
		us := h.c.Topo.NodesInRegion(simnet.USEast1)
		eu := h.c.Topo.NodesInRegion(simnet.EuropeW2)
		asia := h.c.Topo.NodesInRegion(simnet.AsiaNE1)
		if len(us) < 2 || len(eu) < 3 || len(asia) < 1 {
			return
		}
		placements := []zones.Placement{
			{Voters: []simnet.NodeID{us[0], us[1], eu[0], eu[1], asia[0]}, Leaseholder: us[0]},
			{Voters: []simnet.NodeID{us[0], us[1], eu[1], eu[2], asia[0]}, Leaseholder: us[0]},
		}
		for i := 0; !h.stopped; i++ {
			p.Sleep(8 * sim.Second)
			if h.stopped {
				return
			}
			pl := placements[(i+1)%2]
			// Skip while any involved node is down; relocation under faults
			// is not what this workload measures.
			down := false
			for _, id := range pl.Replicas() {
				if h.c.Net.NodeDown(id) || !h.c.Liveness.Live(id, p.Now()) {
					down = true
					break
				}
			}
			if down {
				continue
			}
			desc, ok := h.c.Catalog.LookupByID(h.bankRange)
			if !ok {
				return
			}
			if err := h.c.Admin.Relocate(p, h.bankRange, pl, desc.Policy); err == nil {
				h.rep.Relocations++
			}
		}
	})
}

// leaseAcquisitions sums failover lease acquisitions across replicas.
func (h *harness) leaseAcquisitions() int64 {
	var n int64
	for _, id := range h.c.Topo.Nodes() {
		for _, d := range h.c.Catalog.All() {
			if r, ok := h.c.Stores[id].Replica(d.RangeID); ok {
				n += r.LeaseAcquisitions
			}
		}
	}
	return n
}

// checkLinearizability verifies the single-writer register: for any two
// successful reads a, b with a.end < b.start, a.val <= b.val. Sweep in
// O(n log n): process reads by start time, tracking the max value among
// reads that ended before the current start.
func (h *harness) checkLinearizability() {
	reads := h.linReads
	h.rep.LinReads = len(reads)
	byStart := append([]linRead(nil), reads...)
	byEnd := append([]linRead(nil), reads...)
	sortReads(byStart, func(r linRead) sim.Time { return r.start })
	sortReads(byEnd, func(r linRead) sim.Time { return r.end })
	maxEnded := 0
	j := 0
	for _, r := range byStart {
		for j < len(byEnd) && byEnd[j].end < r.start {
			if byEnd[j].val > maxEnded {
				maxEnded = byEnd[j].val
			}
			j++
		}
		if r.val < maxEnded {
			h.rep.LinViolations++
		}
	}
}

func sortReads(rs []linRead, key func(linRead) sim.Time) {
	// Insertion-free stable sort via sort.SliceStable equivalent; local
	// helper keeps the call sites tidy.
	for i := 1; i < len(rs); i++ {
		for k := i; k > 0 && key(rs[k]) < key(rs[k-1]); k-- {
			rs[k], rs[k-1] = rs[k-1], rs[k]
		}
	}
}

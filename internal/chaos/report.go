package chaos

import (
	"fmt"
	"strings"

	"mrdb/internal/sim"
)

// Report summarizes a chaos run: the injected schedule, workload throughput,
// and the outcome of every invariant check. With a fixed seed the entire
// report (including the schedule) is reproducible bit-for-bit.
type Report struct {
	Seed    int64
	Events  []Event
	Elapsed sim.Duration

	RegionFailures int

	// Bank-sum conservation.
	BankExpected    int
	BankFinal       int
	BankAudits      int
	BankAuditBad    int
	FinalAuditOK    bool
	TransfersOK     int64
	TransfersFailed int64

	// Single-key linearizability (single-writer monotonic register).
	LinWrites     int
	LinReads      int
	LinViolations int

	// Closed-timestamp monotonicity.
	ClosedTSSamples     int64
	ClosedTSRegressions int64

	// Placement invariants: every sampled range with a zone config must
	// satisfy its constraints (with the mid-migration relaxation: counts may
	// exceed but never drop below the configured minimums).
	PlacementChecks     int64
	PlacementViolations int64
	PlacementFirstBad   string

	// Elastic activity (Options.Elastic): load-queue decisions plus the
	// migrator's completed bank-range relocations.
	LoadSplits   int64
	LoadMerges   int64
	LeaseMoves   int64
	ReplicaMoves int64
	Relocations  int

	// Availability probes and measured recovery intervals (virtual time).
	ProbesOK     int64
	ProbesFailed int64
	Recoveries   []sim.Duration
	// RTOByFault holds one pre-rendered histogram summary per fault kind
	// that caused a recovery interval ("<kind> count=... p99=...").
	RTOByFault []string

	// FaultWindows holds one probe-latency trajectory per injected
	// fault/heal pair, derived from the virtual-time timeseries store.
	FaultWindows []FaultWindow

	// SpanHash is the FNV-1a hash over every recorded trace's canonical
	// rendering; with a fixed seed it must be bit-for-bit reproducible.
	SpanHash uint64

	// MetricsDump, when Options.Metrics is set, is the canonical rendering
	// of the full metrics registry; being part of String() it joins the
	// -verify determinism comparison.
	MetricsDump string

	// Recovery machinery counters.
	LeaseAcquisitions int64
	EpochBumps        int64

	// Honest restarts: nodes rebooted from their simulated disks, the
	// virtual time each recovery charged, a pre-rendered histogram summary
	// of those durations, and recoveries that failed outright (corrupt or
	// inconsistent durable state — always an invariant violation).
	Restarts         int
	RecoveryTimes    []sim.Duration
	RestartRecovery  string
	RecoveryFailures int
}

// FaultWindow is one fault's probe-latency trajectory, read off the
// chaos.probe.latency timeseries: the tail latency (per-bucket max) in a
// lookback window before the fault, the peak while it held, and the tail
// after recovery. Spiked means the peak crossed the RTO threshold;
// Reconverged means either it never spiked or the post-recovery tail
// dropped back under the threshold (false when no post-recovery probes
// completed in the observation span).
type FaultWindow struct {
	Fault       Event
	Healed      sim.Time
	PreP99      sim.Duration
	PeakP99     sim.Duration
	AfterP99    sim.Duration
	Samples     int64 // probes completing between fault and after-start
	Spiked      bool
	Reconverged bool
}

func (fw FaultWindow) String() string {
	return fmt.Sprintf("%s healed=%v pre-p99=%v peak-p99=%v after-p99=%v samples=%d spiked=%v reconverged=%v",
		fw.Fault, fw.Healed, fw.PreP99, fw.PeakP99, fw.AfterP99,
		fw.Samples, fw.Spiked, fw.Reconverged)
}

// Schedule renders the fault schedule as one canonical line per event;
// two runs with the same seed must produce identical schedules.
func (r *Report) Schedule() string {
	var b strings.Builder
	for _, e := range r.Events {
		b.WriteString(e.String())
		b.WriteByte('\n')
	}
	return b.String()
}

// MaxRTO returns the longest measured recovery interval, or zero.
func (r *Report) MaxRTO() sim.Duration {
	var max sim.Duration
	for _, d := range r.Recoveries {
		if d > max {
			max = d
		}
	}
	return max
}

// OK reports whether every invariant held.
func (r *Report) OK() bool {
	return r.FinalAuditOK && r.BankAuditBad == 0 && r.LinViolations == 0 &&
		r.ClosedTSRegressions == 0 && r.RecoveryFailures == 0 &&
		r.PlacementViolations == 0
}

// String renders a human-readable summary.
func (r *Report) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "chaos seed=%d: %d events over %v (virtual)\n",
		r.Seed, len(r.Events), r.Elapsed)
	fmt.Fprintf(&b, "  bank: final=%d/%d audits=%d bad=%d transfers ok=%d failed=%d\n",
		r.BankFinal, r.BankExpected, r.BankAudits, r.BankAuditBad,
		r.TransfersOK, r.TransfersFailed)
	fmt.Fprintf(&b, "  linearizability: writes=%d reads=%d violations=%d\n",
		r.LinWrites, r.LinReads, r.LinViolations)
	fmt.Fprintf(&b, "  closed-ts: samples=%d regressions=%d\n",
		r.ClosedTSSamples, r.ClosedTSRegressions)
	if r.PlacementChecks > 0 {
		fmt.Fprintf(&b, "  placement: checks=%d violations=%d\n",
			r.PlacementChecks, r.PlacementViolations)
		if r.PlacementFirstBad != "" {
			fmt.Fprintf(&b, "    first: %s\n", r.PlacementFirstBad)
		}
	}
	if r.LoadSplits+r.LoadMerges+r.LeaseMoves+r.ReplicaMoves+int64(r.Relocations) > 0 {
		fmt.Fprintf(&b, "  elastic: load-splits=%d merges=%d lease-moves=%d replica-moves=%d relocations=%d\n",
			r.LoadSplits, r.LoadMerges, r.LeaseMoves, r.ReplicaMoves, r.Relocations)
	}
	fmt.Fprintf(&b, "  probes: ok=%d failed=%d outages=%d max-rto=%v\n",
		r.ProbesOK, r.ProbesFailed, len(r.Recoveries), r.MaxRTO())
	for _, line := range r.RTOByFault {
		fmt.Fprintf(&b, "  rto %s\n", line)
	}
	for _, fw := range r.FaultWindows {
		fmt.Fprintf(&b, "  fault-window %s\n", fw)
	}
	fmt.Fprintf(&b, "  trace: span-hash=%016x\n", r.SpanHash)
	if r.MetricsDump != "" {
		b.WriteString("  metrics:\n")
		for _, line := range strings.Split(strings.TrimRight(r.MetricsDump, "\n"), "\n") {
			fmt.Fprintf(&b, "    %s\n", line)
		}
	}
	fmt.Fprintf(&b, "  recovery: lease-acquisitions=%d epoch-bumps=%d region-failures=%d\n",
		r.LeaseAcquisitions, r.EpochBumps, r.RegionFailures)
	if r.Restarts > 0 || r.RecoveryFailures > 0 {
		fmt.Fprintf(&b, "  restarts: %d from disk (failed=%d) recovery %s\n",
			r.Restarts, r.RecoveryFailures, r.RestartRecovery)
	}
	fmt.Fprintf(&b, "  invariants: %s\n", map[bool]string{true: "OK", false: "VIOLATED"}[r.OK()])
	return b.String()
}

package zones

import (
	"fmt"
	"strings"
	"testing"
	"testing/quick"

	"mrdb/internal/simnet"
)

// topo builds n regions × z zones × k nodes per zone. IDs start at 1.
func topo(nRegions, zonesPer, nodesPerZone int) *simnet.Topology {
	t := simnet.NewTopology()
	id := simnet.NodeID(1)
	for r := 0; r < nRegions; r++ {
		region := simnet.Region(fmt.Sprintf("region-%d", r))
		for z := 0; z < zonesPer; z++ {
			zone := simnet.Zone(fmt.Sprintf("region-%d-%c", r, 'a'+z))
			for n := 0; n < nodesPerZone; n++ {
				t.AddNode(id, simnet.Locality{Region: region, Zone: zone})
				id++
			}
		}
	}
	return t
}

func TestValidate(t *testing.T) {
	bad := []Config{
		{NumReplicas: 0, NumVoters: 0},
		{NumReplicas: 3, NumVoters: 0},
		{NumReplicas: 3, NumVoters: 5},
		{NumReplicas: 3, NumVoters: 3, Constraints: map[simnet.Region]int{"a": 2, "b": 2}},
		{NumReplicas: 5, NumVoters: 3, VoterConstraints: map[simnet.Region]int{"a": 4}},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: expected validation error for %+v", i, c)
		}
	}
	good := Config{NumReplicas: 5, NumVoters: 3,
		Constraints:      map[simnet.Region]int{"a": 1, "b": 1},
		VoterConstraints: map[simnet.Region]int{"a": 2}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
}

func TestAllocateZoneSurvivable(t *testing.T) {
	// Paper §3.3.2: ZONE survivability = 3 voters in home region spread
	// across zones + 1 non-voter in each other region.
	tp := topo(3, 3, 1)
	a := &Allocator{Topo: tp}
	cfg := Config{
		NumReplicas: 5, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{"region-0": 3},
		Constraints:      map[simnet.Region]int{"region-1": 1, "region-2": 1},
		LeasePreferences: []simnet.Region{"region-0"},
	}
	p, err := a.Allocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckPlacement(cfg, p); err != nil {
		t.Fatal(err)
	}
	// Voters all in region-0, distinct zones.
	zonesSeen := map[simnet.Zone]bool{}
	for _, v := range p.Voters {
		l, _ := tp.LocalityOf(v)
		if l.Region != "region-0" {
			t.Fatalf("voter %d in %s", v, l.Region)
		}
		if zonesSeen[l.Zone] {
			t.Fatalf("two voters share zone %s", l.Zone)
		}
		zonesSeen[l.Zone] = true
	}
	if len(p.NonVoters) != 2 {
		t.Fatalf("non-voters = %v", p.NonVoters)
	}
	lh, _ := tp.LocalityOf(p.Leaseholder)
	if lh.Region != "region-0" {
		t.Fatalf("leaseholder in %s", lh.Region)
	}
}

func TestAllocateRegionSurvivable(t *testing.T) {
	// Paper §3.3.3: REGION survivability with N=3 regions: 5 voters,
	// 2 in the home region, at least 1 replica per region.
	tp := topo(3, 3, 2)
	a := &Allocator{Topo: tp}
	cfg := Config{
		NumReplicas: 5, NumVoters: 5,
		VoterConstraints: map[simnet.Region]int{"region-0": 2},
		Constraints:      map[simnet.Region]int{"region-0": 2, "region-1": 1, "region-2": 1},
		LeasePreferences: []simnet.Region{"region-0"},
	}
	p, err := a.Allocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.CheckPlacement(cfg, p); err != nil {
		t.Fatal(err)
	}
	perRegion := map[simnet.Region]int{}
	for _, v := range p.Voters {
		l, _ := tp.LocalityOf(v)
		perRegion[l.Region]++
	}
	if perRegion["region-0"] != 2 {
		t.Fatalf("home region voters = %d, want 2", perRegion["region-0"])
	}
	// No region holds a majority of the 5 voters.
	for r, n := range perRegion {
		if n > 2 {
			t.Fatalf("region %s holds %d of 5 voters: a region failure would lose quorum", r, n)
		}
	}
}

func TestAllocateInsufficientNodes(t *testing.T) {
	tp := topo(1, 1, 2)
	a := &Allocator{Topo: tp}
	_, err := a.Allocate(Config{NumReplicas: 3, NumVoters: 3})
	if err == nil {
		t.Fatal("expected failure with 2 nodes for 3 replicas")
	}
}

func TestDiversityPreference(t *testing.T) {
	// 1 region, 3 zones, 3 nodes per zone: 3 voters land in 3 zones.
	tp := topo(1, 3, 3)
	a := &Allocator{Topo: tp}
	p, err := a.Allocate(Config{NumReplicas: 3, NumVoters: 3})
	if err != nil {
		t.Fatal(err)
	}
	zonesSeen := map[simnet.Zone]bool{}
	for _, v := range p.Voters {
		l, _ := tp.LocalityOf(v)
		zonesSeen[l.Zone] = true
	}
	if len(zonesSeen) != 3 {
		t.Fatalf("voters span %d zones, want 3", len(zonesSeen))
	}
}

func TestLoadTieBreak(t *testing.T) {
	tp := topo(1, 1, 3) // one zone: diversity ties everywhere
	load := map[simnet.NodeID]int{1: 10, 2: 0, 3: 5}
	a := &Allocator{Topo: tp, Load: load}
	p, err := a.Allocate(Config{NumReplicas: 1, NumVoters: 1})
	if err != nil {
		t.Fatal(err)
	}
	if p.Voters[0] != 2 {
		t.Fatalf("picked node %d, want least-loaded node 2", p.Voters[0])
	}
}

func TestLeasePreferenceFallback(t *testing.T) {
	tp := topo(2, 3, 1)
	a := &Allocator{Topo: tp}
	// Preference names a region with no voters possible (all voters
	// constrained to region-0): falls back to first voter.
	cfg := Config{
		NumReplicas: 3, NumVoters: 3,
		VoterConstraints: map[simnet.Region]int{"region-0": 3},
		LeasePreferences: []simnet.Region{"region-1"},
	}
	p, err := a.Allocate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	l, _ := tp.LocalityOf(p.Leaseholder)
	if l.Region != "region-0" {
		t.Fatalf("leaseholder region %s", l.Region)
	}
}

func TestConfigString(t *testing.T) {
	cfg := Config{
		NumReplicas: 5, NumVoters: 3,
		Constraints:      map[simnet.Region]int{"us-east1": 1, "europe-west2": 1},
		VoterConstraints: map[simnet.Region]int{"us-east1": 3},
		LeasePreferences: []simnet.Region{"us-east1"},
	}
	s := cfg.String()
	for _, want := range []string{"num_replicas=5", "num_voters=3", "+region=us-east1:3", "lease_preferences=[[+region=us-east1]]"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestCloneIndependence(t *testing.T) {
	cfg := Config{NumReplicas: 3, NumVoters: 3,
		Constraints:      map[simnet.Region]int{"a": 1},
		VoterConstraints: map[simnet.Region]int{"a": 1},
		LeasePreferences: []simnet.Region{"a"}}
	cl := cfg.Clone()
	cl.Constraints["b"] = 1
	cl.LeasePreferences[0] = "z"
	if _, ok := cfg.Constraints["b"]; ok {
		t.Fatal("clone shares constraint map")
	}
	if cfg.LeasePreferences[0] != "a" {
		t.Fatal("clone shares preference slice")
	}
}

// Property: any satisfiable random config yields a placement that passes
// CheckPlacement, never double-places a node, and respects counts.
func TestQuickAllocateSatisfies(t *testing.T) {
	tp := topo(4, 3, 2) // 24 nodes
	a := &Allocator{Topo: tp}
	f := func(voters, extra uint8, pin uint8) bool {
		nv := int(voters%5) + 1 // 1..5
		nr := nv + int(extra%4) // up to +3 non-voters
		cfg := Config{NumReplicas: nr, NumVoters: nv,
			Constraints:      map[simnet.Region]int{},
			VoterConstraints: map[simnet.Region]int{}}
		if pin%2 == 0 {
			cfg.VoterConstraints[simnet.Region(fmt.Sprintf("region-%d", pin%4))] = 1
		}
		p, err := a.Allocate(cfg)
		if err != nil {
			return false
		}
		return a.CheckPlacement(cfg, p) == nil
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Package zones implements zone configurations (paper §3.2) — the low-level
// placement primitives that the multi-region abstractions compile into —
// and the replica allocator that realizes them: constraint satisfaction
// plus diversity-scored placement across failure domains.
package zones

import (
	"fmt"
	"sort"

	"mrdb/internal/simnet"
)

// Config mirrors the zone-configuration fields of paper Listing 1.
type Config struct {
	// NumReplicas is the total replica count (voting + non-voting).
	NumReplicas int
	// NumVoters is the voting replica count; NumReplicas - NumVoters
	// replicas are non-voting.
	NumVoters int
	// Constraints fixes a replica count per region (voting or not),
	// allowing the remainder to be placed freely.
	Constraints map[simnet.Region]int
	// VoterConstraints is like Constraints but for voters only.
	VoterConstraints map[simnet.Region]int
	// LeasePreferences pins the leaseholder to a region so reads can be
	// served from within it. Empty means no preference.
	LeasePreferences []simnet.Region
}

// Clone deep-copies the config.
func (c Config) Clone() Config {
	out := c
	out.Constraints = map[simnet.Region]int{}
	for k, v := range c.Constraints {
		out.Constraints[k] = v
	}
	out.VoterConstraints = map[simnet.Region]int{}
	for k, v := range c.VoterConstraints {
		out.VoterConstraints[k] = v
	}
	out.LeasePreferences = append([]simnet.Region(nil), c.LeasePreferences...)
	return out
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	if c.NumReplicas <= 0 {
		return fmt.Errorf("zones: num_replicas must be positive, got %d", c.NumReplicas)
	}
	if c.NumVoters <= 0 || c.NumVoters > c.NumReplicas {
		return fmt.Errorf("zones: num_voters %d out of range (num_replicas %d)", c.NumVoters, c.NumReplicas)
	}
	sum := 0
	for _, n := range c.Constraints {
		sum += n
	}
	if sum > c.NumReplicas {
		return fmt.Errorf("zones: constraints require %d replicas > num_replicas %d", sum, c.NumReplicas)
	}
	vsum := 0
	for _, n := range c.VoterConstraints {
		vsum += n
	}
	if vsum > c.NumVoters {
		return fmt.Errorf("zones: voter_constraints require %d voters > num_voters %d", vsum, c.NumVoters)
	}
	return nil
}

// String renders the config in the paper's Listing 1 style.
func (c Config) String() string {
	s := fmt.Sprintf("num_replicas=%d num_voters=%d", c.NumReplicas, c.NumVoters)
	appendRegions := func(label string, m map[simnet.Region]int) {
		if len(m) == 0 {
			return
		}
		keys := make([]string, 0, len(m))
		for r := range m {
			keys = append(keys, string(r))
		}
		sort.Strings(keys)
		s += " " + label + "={"
		for i, k := range keys {
			if i > 0 {
				s += ","
			}
			s += fmt.Sprintf("+region=%s:%d", k, m[simnet.Region(k)])
		}
		s += "}"
	}
	appendRegions("constraints", c.Constraints)
	appendRegions("voter_constraints", c.VoterConstraints)
	if len(c.LeasePreferences) > 0 {
		s += fmt.Sprintf(" lease_preferences=[[+region=%s]]", c.LeasePreferences[0])
	}
	return s
}

// Placement is the allocator's output.
type Placement struct {
	Voters    []simnet.NodeID
	NonVoters []simnet.NodeID
	// Leaseholder is the suggested initial leaseholder, honoring lease
	// preferences.
	Leaseholder simnet.NodeID
}

// Replicas returns voters then non-voters.
func (p Placement) Replicas() []simnet.NodeID {
	return append(append([]simnet.NodeID{}, p.Voters...), p.NonVoters...)
}

// Allocator chooses replica placements that satisfy a Config while
// maximizing failure-domain diversity (paper §3.2: "candidates are assigned
// a diversity score such that nodes that do not share localities with
// already placed replicas are ranked higher").
type Allocator struct {
	Topo *simnet.Topology
	// Load optionally maps node → current replica count; lower-loaded
	// nodes win ties.
	Load map[simnet.NodeID]int
}

// candidateScore ranks a node against already-chosen replicas: prefer new
// regions, then new zones, then low load, then low ID (determinism).
func (a *Allocator) candidateScore(id simnet.NodeID, chosen []simnet.NodeID) (int, int, int, int) {
	loc, _ := a.Topo.LocalityOf(id)
	regionShared, zoneShared := 0, 0
	for _, c := range chosen {
		cl, _ := a.Topo.LocalityOf(c)
		if cl.Region == loc.Region {
			regionShared++
			if cl.Zone == loc.Zone {
				zoneShared++
			}
		}
	}
	return zoneShared, regionShared, a.Load[id], int(id)
}

// pick selects count nodes from candidates, greedily maximizing diversity.
func (a *Allocator) pick(candidates []simnet.NodeID, count int, chosen *[]simnet.NodeID, used map[simnet.NodeID]bool) ([]simnet.NodeID, error) {
	var out []simnet.NodeID
	for len(out) < count {
		best := simnet.NodeID(0)
		bz, br, bl, bi := 1<<30, 1<<30, 1<<30, 1<<30
		for _, c := range candidates {
			if used[c] {
				continue
			}
			z, r, l, i := a.candidateScore(c, *chosen)
			if z < bz || (z == bz && (r < br || (r == br && (l < bl || (l == bl && i < bi))))) {
				best, bz, br, bl, bi = c, z, r, l, i
			}
		}
		if best == 0 {
			return nil, fmt.Errorf("zones: not enough nodes (%d of %d placed)", len(out), count)
		}
		used[best] = true
		*chosen = append(*chosen, best)
		out = append(out, best)
	}
	return out, nil
}

// Allocate computes a placement for cfg over the current topology.
func (a *Allocator) Allocate(cfg Config) (Placement, error) {
	if err := cfg.Validate(); err != nil {
		return Placement{}, err
	}
	used := map[simnet.NodeID]bool{}
	var chosen []simnet.NodeID
	var voters, nonVoters []simnet.NodeID

	regionsSorted := func(m map[simnet.Region]int) []simnet.Region {
		out := make([]simnet.Region, 0, len(m))
		for r := range m {
			out = append(out, r)
		}
		sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
		return out
	}

	// 1. Voters pinned by voter_constraints.
	for _, r := range regionsSorted(cfg.VoterConstraints) {
		picked, err := a.pick(a.Topo.NodesInRegion(r), cfg.VoterConstraints[r], &chosen, used)
		if err != nil {
			return Placement{}, fmt.Errorf("voter_constraints %s: %w", r, err)
		}
		voters = append(voters, picked...)
	}
	// 2. Remaining voters anywhere, diversity-first.
	if rem := cfg.NumVoters - len(voters); rem > 0 {
		picked, err := a.pick(a.Topo.Nodes(), rem, &chosen, used)
		if err != nil {
			return Placement{}, err
		}
		voters = append(voters, picked...)
	}
	// 3. Non-voters pinned by constraints, net of voters already there.
	votersPerRegion := map[simnet.Region]int{}
	for _, v := range voters {
		l, _ := a.Topo.LocalityOf(v)
		votersPerRegion[l.Region]++
	}
	for _, r := range regionsSorted(cfg.Constraints) {
		need := cfg.Constraints[r] - votersPerRegion[r]
		if need <= 0 {
			continue
		}
		picked, err := a.pick(a.Topo.NodesInRegion(r), need, &chosen, used)
		if err != nil {
			return Placement{}, fmt.Errorf("constraints %s: %w", r, err)
		}
		nonVoters = append(nonVoters, picked...)
	}
	// 4. Remaining non-voters anywhere.
	if rem := cfg.NumReplicas - len(voters) - len(nonVoters); rem > 0 {
		picked, err := a.pick(a.Topo.Nodes(), rem, &chosen, used)
		if err != nil {
			return Placement{}, err
		}
		nonVoters = append(nonVoters, picked...)
	}

	p := Placement{Voters: voters, NonVoters: nonVoters}
	p.Leaseholder = a.chooseLeaseholder(cfg, voters)
	return p, nil
}

// chooseLeaseholder honors lease preferences among voters; the leaseholder
// must be a voter (it is normally also the Raft leader).
func (a *Allocator) chooseLeaseholder(cfg Config, voters []simnet.NodeID) simnet.NodeID {
	for _, pref := range cfg.LeasePreferences {
		for _, v := range voters {
			l, _ := a.Topo.LocalityOf(v)
			if l.Region == pref {
				return v
			}
		}
	}
	if len(voters) > 0 {
		return voters[0]
	}
	return 0
}

// CheckPlacement verifies that a placement satisfies cfg; used by tests and
// by the rebalancer to detect drift after topology changes.
func (a *Allocator) CheckPlacement(cfg Config, p Placement) error {
	if len(p.Voters) != cfg.NumVoters {
		return fmt.Errorf("zones: %d voters, want %d", len(p.Voters), cfg.NumVoters)
	}
	if len(p.Voters)+len(p.NonVoters) != cfg.NumReplicas {
		return fmt.Errorf("zones: %d replicas, want %d", len(p.Voters)+len(p.NonVoters), cfg.NumReplicas)
	}
	perRegion := map[simnet.Region]int{}
	votersPerRegion := map[simnet.Region]int{}
	seen := map[simnet.NodeID]bool{}
	for _, id := range p.Replicas() {
		if seen[id] {
			return fmt.Errorf("zones: node %d placed twice", id)
		}
		seen[id] = true
		l, ok := a.Topo.LocalityOf(id)
		if !ok {
			return fmt.Errorf("zones: node %d not in topology", id)
		}
		perRegion[l.Region]++
	}
	for _, id := range p.Voters {
		l, _ := a.Topo.LocalityOf(id)
		votersPerRegion[l.Region]++
	}
	for r, n := range cfg.Constraints {
		if perRegion[r] < n {
			return fmt.Errorf("zones: region %s has %d replicas, constraint wants %d", r, perRegion[r], n)
		}
	}
	for r, n := range cfg.VoterConstraints {
		if votersPerRegion[r] < n {
			return fmt.Errorf("zones: region %s has %d voters, voter_constraint wants %d", r, votersPerRegion[r], n)
		}
	}
	if len(cfg.LeasePreferences) > 0 && p.Leaseholder != 0 {
		l, _ := a.Topo.LocalityOf(p.Leaseholder)
		match := false
		for _, pref := range cfg.LeasePreferences {
			if l.Region == pref {
				match = true
				break
			}
		}
		// A preference violation is only an error when some voter could
		// satisfy it.
		if !match {
			for _, pref := range cfg.LeasePreferences {
				for _, v := range p.Voters {
					vl, _ := a.Topo.LocalityOf(v)
					if vl.Region == pref {
						return fmt.Errorf("zones: leaseholder in %s violates satisfiable preference %v", l.Region, cfg.LeasePreferences)
					}
				}
			}
		}
	}
	return nil
}

// CheckPlacementDuring is the mid-migration relaxation of CheckPlacement.
// Relocations add replicas before removing them, so during a migration the
// placement may exceed the configured counts — but it must never drop
// below them, never place a node twice, and never dip under a region
// constraint: survivability holds throughout. Lease preferences are not
// checked because a lease legitimately sits outside the preferred region
// for the instants between a migration's membership and lease-transfer
// steps.
func (a *Allocator) CheckPlacementDuring(cfg Config, p Placement) error {
	if len(p.Voters) < cfg.NumVoters {
		return fmt.Errorf("zones: %d voters, want at least %d", len(p.Voters), cfg.NumVoters)
	}
	if len(p.Voters)+len(p.NonVoters) < cfg.NumReplicas {
		return fmt.Errorf("zones: %d replicas, want at least %d", len(p.Voters)+len(p.NonVoters), cfg.NumReplicas)
	}
	perRegion := map[simnet.Region]int{}
	votersPerRegion := map[simnet.Region]int{}
	seen := map[simnet.NodeID]bool{}
	for _, id := range p.Replicas() {
		if seen[id] {
			return fmt.Errorf("zones: node %d placed twice", id)
		}
		seen[id] = true
		l, ok := a.Topo.LocalityOf(id)
		if !ok {
			return fmt.Errorf("zones: node %d not in topology", id)
		}
		perRegion[l.Region]++
	}
	for _, id := range p.Voters {
		l, _ := a.Topo.LocalityOf(id)
		votersPerRegion[l.Region]++
	}
	for r, n := range cfg.Constraints {
		if perRegion[r] < n {
			return fmt.Errorf("zones: region %s has %d replicas, constraint wants %d", r, perRegion[r], n)
		}
	}
	for r, n := range cfg.VoterConstraints {
		if votersPerRegion[r] < n {
			return fmt.Errorf("zones: region %s has %d voters, voter_constraint wants %d", r, votersPerRegion[r], n)
		}
	}
	return nil
}

// movr: the paper's motivating ride-sharing application (§1.1, Fig. 1).
//
// A single-region movr schema is converted to multi-region with a handful
// of declarative statements: promo_codes becomes GLOBAL (read-mostly
// reference data), users and rides become REGIONAL BY ROW with a computed
// region, and the database keeps enforcing the global uniqueness of email
// addresses — the thing Fig. 1b says traditional sharding cannot do.
//
// Run with: go run ./examples/movr
package main

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func main() {
	// Four regions of hardware; the database starts with three.
	regions := append(cluster.ThreeRegions(),
		cluster.RegionSpec{Name: simnet.USWest1, Zones: 3, NodesPerZone: 1})
	c := cluster.New(cluster.Config{
		Seed:      7,
		Regions:   regions,
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()

	c.Sim.Spawn("movr", func(p *sim.Proc) {
		defer c.Sim.Stop()
		ny := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
		tokyo := sql.NewSession(c, catalog, c.GatewayFor(simnet.AsiaNE1))
		london := sql.NewSession(c, catalog, c.GatewayFor(simnet.EuropeW2))

		must := func(s *sql.Session, q string) *sql.Result {
			res, err := s.Exec(p, q)
			if err != nil {
				panic(err)
			}
			return res
		}
		timed := func(s *sql.Session, label, q string) *sql.Result {
			start := p.Now()
			res, err := s.Exec(p, q)
			if err != nil {
				fmt.Printf("  %-46s !! %v\n", label, err)
				return nil
			}
			fmt.Printf("  %-46s %10s @ %s\n", label, p.Now().Sub(start), s.Region())
			return res
		}

		fmt.Println("== movr goes multi-region (paper Fig. 1c) ==")
		must(ny, `CREATE DATABASE movr PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`)
		tokyo.Database, london.Database = "movr", "movr"
		// The city column determines the home region (computed
		// partitioning, §2.3.2) — no application changes needed.
		must(ny, `CREATE TABLE users (
			id INT PRIMARY KEY,
			city STRING NOT NULL,
			email STRING UNIQUE,
			name STRING,
			crdb_region crdb_internal_region AS (
				CASE WHEN city = 'new york' THEN 'us-east1'
				     WHEN city = 'london' THEN 'europe-west2'
				     ELSE 'asia-northeast1' END) STORED
		) LOCALITY REGIONAL BY ROW`)
		must(ny, `CREATE TABLE rides (
			id INT PRIMARY KEY,
			city STRING NOT NULL,
			rider_id INT,
			vehicle STRING,
			crdb_region crdb_internal_region AS (
				CASE WHEN city = 'new york' THEN 'us-east1'
				     WHEN city = 'london' THEN 'europe-west2'
				     ELSE 'asia-northeast1' END) STORED
		) LOCALITY REGIONAL BY ROW`)
		must(ny, `CREATE TABLE promo_codes (code STRING PRIMARY KEY, description STRING) LOCALITY GLOBAL`)
		p.Sleep(2 * sim.Second)

		fmt.Println("\n-- Riders sign up in their own cities (all local writes):")
		timed(ny, "INSERT user amy (new york)", `INSERT INTO users (id, city, email, name) VALUES (1, 'new york', 'amy@movr.com', 'Amy')`)
		timed(london, "INSERT user oli (london)", `INSERT INTO users (id, city, email, name) VALUES (2, 'london', 'oli@movr.com', 'Oli')`)
		timed(tokyo, "INSERT user kei (tokyo)", `INSERT INTO users (id, city, email, name) VALUES (3, 'tokyo', 'kei@movr.com', 'Kei')`)

		fmt.Println("\n-- The email uniqueness constraint is global (Fig. 1b said sharding loses this):")
		timed(tokyo, "INSERT duplicate email from tokyo", `INSERT INTO users (id, city, email, name) VALUES (9, 'tokyo', 'amy@movr.com', 'Imposter')`)

		fmt.Println("\n-- Logins look up by email; the region is unknown, but locality")
		fmt.Println("   optimized search (§4.2) stays local when the user is local:")
		timed(london, "SELECT by email (local user)", `SELECT name FROM users WHERE email = 'oli@movr.com'`)
		timed(london, "SELECT by email (remote user)", `SELECT name FROM users WHERE email = 'kei@movr.com'`)

		fmt.Println("\n-- When the city is in the query, it pins the region (computed partitioning):")
		timed(london, "SELECT by id+city (pinned local)", `SELECT name FROM users WHERE id = 2 AND city = 'london'`)

		fmt.Println("\n-- promo_codes is GLOBAL: one slow write, fast fresh reads in every region:")
		timed(ny, "INSERT promo code", `INSERT INTO promo_codes (code, description) VALUES ('RIDE5', '5 dollars off')`)
		timed(ny, "read promo (new york)", `SELECT description FROM promo_codes WHERE code = 'RIDE5'`)
		timed(london, "read promo (london)", `SELECT description FROM promo_codes WHERE code = 'RIDE5'`)
		timed(tokyo, "read promo (tokyo)", `SELECT description FROM promo_codes WHERE code = 'RIDE5'`)

		fmt.Println("\n-- Rides insert locally and join against the GLOBAL promo table without leaving the region:")
		txStart := p.Now()
		tx := london.BeginTxn()
		if _, err := london.ExecTxn(p, tx, `SELECT description FROM promo_codes WHERE code = 'RIDE5'`); err != nil {
			panic(err)
		}
		if _, err := london.ExecTxn(p, tx, `INSERT INTO rides (id, city, rider_id, vehicle) VALUES (100, 'london', 2, 'scooter')`); err != nil {
			panic(err)
		}
		if err := london.CommitTxn(p); err != nil {
			panic(err)
		}
		fmt.Printf("  %-46s %10s @ %s\n", "txn: read promo + insert ride", p.Now().Sub(txStart), london.Region())

		fmt.Println("\n-- Adding a region is ONE statement (Table 2): new partitions are")
		fmt.Println("   created and every range gets a replica there automatically (§3.3):")
		timed(ny, `ALTER DATABASE movr ADD REGION`, `ALTER DATABASE movr ADD REGION "us-west1"`)
		sf := sql.NewSession(c, catalog, c.GatewayFor(simnet.USWest1))
		sf.Database = "movr"
		p.Sleep(2 * sim.Second)
		timed(sf, "INSERT user sam (san francisco)", `INSERT INTO users (id, city, email, name) VALUES (4, 'san francisco', 'sam@movr.com', 'Sam')`)
		if res := timed(sf, "where does sam live?", `SELECT crdb_region FROM users WHERE id = 4 AND city = 'san francisco'`); res != nil {
			fmt.Printf("  (crdb_region = %v — the computed CASE has no arm for it, so it fell to the ELSE region)\n", res.Rows[0][0])
		}
		timed(sf, "read promo (san francisco, GLOBAL)", `SELECT description FROM promo_codes WHERE code = 'RIDE5'`)
	})
	c.Sim.Run()
}

// iot: the real customer workload of paper §7.5.2 — a personalized
// assistant storing global IoT device and user data.
//
//   - Devices stay in their region and need fast event writes:
//     REGIONAL BY ROW.
//   - Users move around and need fast reads everywhere: GLOBAL.
//
// The demo also upgrades the database to SURVIVE REGION FAILURE and then
// kills an entire region to show reads and writes continuing.
//
// Run with: go run ./examples/iot
package main

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/kv"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func main() {
	c := cluster.New(cluster.Config{
		Seed:      11,
		Regions:   cluster.ThreeRegions(),
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()

	c.Sim.Spawn("iot", func(p *sim.Proc) {
		defer c.Sim.Stop()
		east := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
		asia := sql.NewSession(c, catalog, c.GatewayFor(simnet.AsiaNE1))
		europe := sql.NewSession(c, catalog, c.GatewayFor(simnet.EuropeW2))

		timed := func(s *sql.Session, label, q string) *sql.Result {
			start := p.Now()
			res, err := s.Exec(p, q)
			if err != nil {
				fmt.Printf("  %-48s !! %v\n", label, err)
				return nil
			}
			fmt.Printf("  %-48s %10s @ %s\n", label, p.Now().Sub(start), s.Region())
			return res
		}

		fmt.Println("== IoT assistant (paper §7.5.2) ==")
		timed(east, "create database", `CREATE DATABASE iot PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`)
		asia.Database, europe.Database = "iot", "iot"
		// Devices never move: deriving the region from the device ID
		// keeps writes local AND elides uniqueness checks (§4.1 case 3).
		timed(east, "devices: REGIONAL BY ROW", `CREATE TABLE device_events (
			device_id INT,
			seq INT,
			reading FLOAT,
			crdb_region crdb_internal_region AS (region_from_warehouse(device_id)) STORED,
			PRIMARY KEY (device_id, seq)
		) LOCALITY REGIONAL BY ROW`)
		timed(east, "users: GLOBAL", `CREATE TABLE user_profiles (
			user_id INT PRIMARY KEY,
			home_city STRING,
			assistant_voice STRING
		) LOCALITY GLOBAL`)
		p.Sleep(2 * sim.Second)

		fmt.Println("\n-- Devices write events fast in their own regions:")
		timed(asia, "device 3 event (tokyo)", `INSERT INTO device_events (device_id, seq, reading) VALUES (3, 1, 21.5)`)
		timed(asia, "device 3 event (tokyo)", `INSERT INTO device_events (device_id, seq, reading) VALUES (3, 2, 21.7)`)
		timed(europe, "device 7 event (london)", `INSERT INTO device_events (device_id, seq, reading) VALUES (7, 1, 18.2)`)

		fmt.Println("\n-- A user profile written once is readable fast everywhere they travel:")
		timed(east, "write profile", `INSERT INTO user_profiles (user_id, home_city, assistant_voice) VALUES (42, 'boston', 'calm')`)
		timed(east, "read profile (boston)", `SELECT assistant_voice FROM user_profiles WHERE user_id = 42`)
		timed(europe, "read profile (london)", `SELECT assistant_voice FROM user_profiles WHERE user_id = 42`)
		timed(asia, "read profile (tokyo)", `SELECT assistant_voice FROM user_profiles WHERE user_id = 42`)

		fmt.Println("\n-- Upgrade availability: SURVIVE REGION FAILURE (§2.2). Write")
		fmt.Println("   quorums now span regions, so writes pay the nearest-region RTT:")
		timed(east, "ALTER DATABASE iot SURVIVE REGION FAILURE", `ALTER DATABASE iot SURVIVE REGION FAILURE`)
		p.Sleep(time2())
		timed(asia, "device event after upgrade", `INSERT INTO device_events (device_id, seq, reading) VALUES (3, 3, 21.9)`)

		fmt.Println("\n-- Now kill the asia region entirely:")
		c.Net.FailRegion(simnet.AsiaNE1)
		// Production systems fail the lease over automatically via lease
		// expiry; the admin path models the recovery for the partitions
		// homed in the dead region.
		for _, d := range c.Catalog.All() {
			if loc, _ := c.Topo.LocalityOf(d.Leaseholder); loc.Region == simnet.AsiaNE1 {
				var target simnet.NodeID
				for _, v := range d.Voters {
					if l, _ := c.Topo.LocalityOf(v); l.Region != simnet.AsiaNE1 {
						target = v
						break
					}
				}
				if target == 0 {
					continue
				}
				sr, _ := c.Stores[target].Replica(d.RangeID)
				sr.Raft().Campaign()
				for i := 0; i < 200 && !sr.Raft().IsLeader(); i++ {
					p.Sleep(50 * sim.Millisecond)
				}
				nd := d.Clone()
				nd.Leaseholder = target
				nd.Generation++
				if f, err := sr.Raft().Propose(kv.Command{Kind: kv.CmdLeaseTransfer, Desc: nd, Ts: c.Stores[target].Clock.Now().Add(c.MaxOffset)}); err == nil {
					f.Wait(p)
				}
				c.Catalog.Update(nd)
			}
		}
		fmt.Println("   (leases of asia-homed partitions failed over to surviving regions)")

		fmt.Println("\n-- The tokyo devices' data is still there, and writes still commit:")
		timed(europe, "read tokyo device history", `SELECT reading FROM device_events WHERE device_id = 3 AND seq = 2`)
		timed(europe, "write on behalf of device 3", `INSERT INTO device_events (device_id, seq, reading) VALUES (3, 4, 22.1)`)
		timed(europe, "read profile (GLOBAL, still local)", `SELECT assistant_voice FROM user_profiles WHERE user_id = 42`)
	})
	c.Sim.Run()
}

func time2() sim.Duration { return 2 * sim.Second }

// Quickstart: bring up a simulated 3-region cluster, create a multi-region
// database with one table per locality (paper §2), and watch where reads
// and writes are served from and what they cost.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"

	"mrdb/internal/cluster"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
	"mrdb/internal/sql"
)

func main() {
	c := cluster.New(cluster.Config{
		Seed:      1,
		Regions:   cluster.ThreeRegions(), // us-east1, europe-west2, asia-northeast1
		MaxOffset: 250 * sim.Millisecond,
	})
	catalog := sql.NewCatalog()

	c.Sim.Spawn("quickstart", func(p *sim.Proc) {
		defer c.Sim.Stop() // background heartbeats run forever otherwise
		east := sql.NewSession(c, catalog, c.GatewayFor(simnet.USEast1))
		asia := sql.NewSession(c, catalog, c.GatewayFor(simnet.AsiaNE1))

		exec := func(s *sql.Session, q string) *sql.Result {
			start := p.Now()
			res, err := s.Exec(p, q)
			if err != nil {
				fmt.Printf("!! %v\n", err)
				return nil
			}
			fmt.Printf("[%8s @ %s] %s\n", p.Now().Sub(start), s.Region(), q)
			return res
		}

		fmt.Println("== Schema: one table per locality ==")
		exec(east, `CREATE DATABASE demo PRIMARY REGION "us-east1" REGIONS "europe-west2", "asia-northeast1"`)
		asia.Database = "demo"
		exec(east, `CREATE TABLE settings (k STRING PRIMARY KEY, v STRING) LOCALITY GLOBAL`)
		exec(east, `CREATE TABLE east_audit (id INT PRIMARY KEY, note STRING) LOCALITY REGIONAL BY TABLE IN PRIMARY REGION`)
		exec(east, `CREATE TABLE users (id INT PRIMARY KEY, email STRING UNIQUE, name STRING) LOCALITY REGIONAL BY ROW`)
		p.Sleep(2 * sim.Second) // closed timestamps propagate

		fmt.Println("\n== GLOBAL tables: slow writes, fast strongly-consistent reads everywhere ==")
		exec(east, `INSERT INTO settings (k, v) VALUES ('theme', 'dark')`)
		exec(east, `SELECT v FROM settings WHERE k = 'theme'`)
		exec(asia, `SELECT v FROM settings WHERE k = 'theme'`) // local in asia!

		fmt.Println("\n== REGIONAL BY ROW: rows live where they are inserted ==")
		exec(east, `INSERT INTO users (id, email, name) VALUES (1, 'amy@example.com', 'Amy')`)
		exec(asia, `INSERT INTO users (id, email, name) VALUES (2, 'kenji@example.jp', 'Kenji')`)
		if res := exec(asia, `SELECT crdb_region, name FROM users WHERE id = 2`); res != nil {
			fmt.Printf("           row 2 lives in %v\n", res.Rows[0][0])
		}

		fmt.Println("\n== Locality optimized search: unique lookups probe the local region first ==")
		exec(asia, `SELECT name FROM users WHERE email = 'kenji@example.jp'`) // local hit
		exec(asia, `SELECT name FROM users WHERE email = 'amy@example.com'`)  // local miss, one fan-out

		fmt.Println("\n== Global uniqueness holds across partitions ==")
		if _, err := asia.Exec(p, `INSERT INTO users (id, email, name) VALUES (3, 'amy@example.com', 'Imposter')`); err != nil {
			fmt.Printf("   rejected as expected: %v\n", err)
		}

		fmt.Println("\n== Stale reads: remote REGIONAL data at local latency ==")
		exec(east, `INSERT INTO east_audit (id, note) VALUES (1, 'hello from the east')`)
		p.Sleep(4 * sim.Second) // let the close lag pass
		exec(asia, `SELECT note FROM east_audit AS OF SYSTEM TIME with_max_staleness('10s') WHERE id = 1`)

		fmt.Println("\n== SHOW REGIONS ==")
		if res := exec(east, `SHOW REGIONS FROM DATABASE demo`); res != nil {
			for _, row := range res.Rows {
				fmt.Printf("   %-24v %v\n", row[0], row[1])
			}
		}
	})
	c.Sim.Run()
}

module mrdb

go 1.22

package mrdb_test

// One benchmark per table and figure of the paper's evaluation (§7). Each
// benchmark executes a scaled-down but shape-preserving run of the
// corresponding experiment and reports the headline latencies as custom
// metrics (milliseconds of virtual time). `cmd/mrbench` runs the same
// experiments with full output; `mrbench -full` approaches paper scale.

import (
	"io"
	"testing"

	"mrdb/internal/bench"
	"mrdb/internal/core"
	"mrdb/internal/sim"
	"mrdb/internal/simnet"
)

// benchScale is small enough that the whole suite completes in a few
// minutes of real time.
func benchScale() bench.Scale {
	return bench.Scale{RecordCount: 300, OpsPerClient: 15, ClientsPerRegion: 2, TPCCTxnsPerTerminal: 10}
}

func BenchmarkTable1RTTMatrix(b *testing.B) {
	for i := 0; i < b.N; i++ {
		topo := simnet.NewTable1Topology()
		total := sim.Duration(0)
		regions := simnet.Table1Regions()
		for _, a := range regions {
			for _, c := range regions {
				total += topo.RegionRTT(a, c)
			}
		}
		if total == 0 {
			b.Fatal("empty RTT matrix")
		}
	}
}

func BenchmarkTable2DDLCounts(b *testing.B) {
	regions := []simnet.Region{simnet.USEast1, simnet.USWest1, simnet.EuropeW2}
	for i := 0; i < b.N; i++ {
		rows := core.Table2(regions)
		if len(rows) != 3 || rows[0].AddRegionAfter != 1 {
			b.Fatal("table 2 mismatch")
		}
	}
}

// runFigure executes one figure reproduction per benchmark iteration.
func runFigure(b *testing.B, fn func(io.Writer, bench.Scale) error) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if err := fn(io.Discard, benchScale()); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3RegionalVsGlobal(b *testing.B)    { runFigure(b, bench.Fig3) }
func BenchmarkFig4aLocalityOptimized(b *testing.B)  { runFigure(b, bench.Fig4a) }
func BenchmarkFig4bUniquenessChecks(b *testing.B)   { runFigure(b, bench.Fig4b) }
func BenchmarkFig4cRehomingContention(b *testing.B) { runFigure(b, bench.Fig4c) }
func BenchmarkFig5GlobalTails(b *testing.B)         { runFigure(b, bench.Fig5) }

func BenchmarkFig6TPCCScalability(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if err := bench.Fig6(io.Discard, benchScale(), false); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCommitWait(b *testing.B) {
	runFigure(b, bench.AblationCommitWait)
}

func BenchmarkAblationNonVoters(b *testing.B) {
	runFigure(b, bench.AblationNonVoters)
}

func BenchmarkAblationSurvivability(b *testing.B) {
	runFigure(b, bench.AblationSurvivability)
}
